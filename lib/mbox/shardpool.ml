module Obs = Bbx_obs.Obs

let obs_submitted = Obs.counter "bbx_shardpool_submitted_total"
let obs_dropped = Obs.counter "bbx_shardpool_dropped_total"
let obs_batches = Obs.counter "bbx_shardpool_batches_total"
let obs_domains = Obs.gauge "bbx_shardpool_domains"

type conn_id = Shard.conn_id

type stats = Shard.stats

(* Everything a worker may be asked to do goes through its mailbox, in
   FIFO order — including registration, salt resets and teardown.  That
   single rule is the whole concurrency story: a connection's engine is
   only ever touched by the worker domain owning its shard, and the
   per-connection salt counters advance in exactly the order the front
   submitted deliveries. *)
type msg =
  | Register of { conn_id : conn_id; salt0 : int; enc_chunk : string -> string }
  | Deliver of { seq : int; conn_id : conn_id; wire : string }
  | Reset of { conn_id : conn_id; salt0 : int }
  | Unregister of { conn_id : conn_id }

type result = {
  r_seq : int;
  r_conn : conn_id;
  r_verdicts : Engine.verdict list;
}

type shard = {
  core : Shard.t;
  lock : Mutex.t;
  nonempty : Condition.t;          (* worker waits for work *)
  space : Condition.t;             (* front waits for mailbox capacity *)
  idle : Condition.t;              (* front waits for quiescence *)
  queue : msg Queue.t;
  mutable busy : bool;             (* worker is processing a batch *)
  mutable stopping : bool;
  mutable out : result list;       (* completed deliveries, newest first *)
  mutable failed : exn option;     (* first worker-side exception, sticky *)
}

type t = {
  shards : shard array;
  workers : unit Domain.t array;
  capacity : int;
  batch_max : int;
  mutable seq : int;               (* next submission ticket *)
  mutable pending : int;           (* submissions not yet drained *)
  registered : (conn_id, unit) Hashtbl.t;  (* front-side duplicate/unknown guard *)
  mutable live : bool;
}

(* Connection routing: dense conn ids spread perfectly evenly (important
   for scaling), arbitrary ids still land deterministically. *)
let shard_index t conn_id = (conn_id land max_int) mod Array.length t.shards

let shard_of t conn_id = t.shards.(shard_index t conn_id)

(* ---- worker ---- *)

let exec_msg core msg acc =
  match msg with
  | Register { conn_id; salt0; enc_chunk } ->
    Shard.register core ~conn_id ~salt0 ~enc_chunk
  | Deliver { seq; conn_id; wire } ->
    if Shard.is_blocked core ~conn_id then Obs.incr obs_dropped
    else begin
      let verdicts = Shard.process_wire core ~conn_id wire in
      acc := { r_seq = seq; r_conn = conn_id; r_verdicts = verdicts } :: !acc
    end
  | Reset { conn_id; salt0 } -> Shard.reset_conn core ~conn_id ~salt0
  | Unregister { conn_id } -> Shard.unregister core ~conn_id

(* One worker per shard: splice out up to [batch_max] messages under the
   lock, process them without it, publish results, repeat.  Quiescence
   ([idle]) means "mailbox empty and no batch in flight" — the front uses
   it for [drain]/[stats] and all other reads of shard state. *)
let worker_loop batch_max sh =
  let batch = Queue.create () in
  Mutex.lock sh.lock;
  let rec loop () =
    if Queue.is_empty sh.queue then begin
      sh.busy <- false;
      Condition.broadcast sh.idle;
      if sh.stopping then Mutex.unlock sh.lock
      else begin
        Condition.wait sh.nonempty sh.lock;
        loop ()
      end
    end
    else begin
      sh.busy <- true;
      let n = ref 0 in
      while !n < batch_max && not (Queue.is_empty sh.queue) do
        Queue.add (Queue.pop sh.queue) batch;
        incr n
      done;
      Condition.broadcast sh.space;
      Mutex.unlock sh.lock;
      let acc = ref [] in
      Queue.iter
        (fun msg ->
           try exec_msg sh.core msg acc
           with e -> if sh.failed = None then sh.failed <- Some e)
        batch;
      Queue.clear batch;
      Obs.incr obs_batches;
      Mutex.lock sh.lock;
      sh.out <- !acc @ sh.out;
      loop ()
    end
  in
  loop ()

(* ---- front ---- *)

let default_domains () = max 1 (Domain.recommended_domain_count () - 1)

let create ?domains ?(capacity = 1024) ?(batch_max = 64) ~mode ~rules () =
  let n = match domains with Some n -> n | None -> default_domains () in
  if n < 1 then invalid_arg "Shardpool.create: domains must be >= 1";
  if capacity < 1 then invalid_arg "Shardpool.create: capacity must be >= 1";
  if batch_max < 1 then invalid_arg "Shardpool.create: batch_max must be >= 1";
  let shards =
    Array.init n (fun _ ->
        { core = Shard.create ~mode ~rules;
          lock = Mutex.create ();
          nonempty = Condition.create ();
          space = Condition.create ();
          idle = Condition.create ();
          queue = Queue.create ();
          busy = false;
          stopping = false;
          out = [];
          failed = None })
  in
  let workers = Array.map (fun sh -> Domain.spawn (fun () -> worker_loop batch_max sh)) shards in
  Obs.set_gauge obs_domains n;
  { shards; workers; capacity; batch_max; seq = 0; pending = 0;
    registered = Hashtbl.create 64; live = true }

let domains t = Array.length t.shards

let check_live t op =
  if not t.live then invalid_arg (Printf.sprintf "Shardpool.%s: pool is shut down" op)

let push t sh msg =
  Mutex.lock sh.lock;
  while Queue.length sh.queue >= t.capacity do Condition.wait sh.space sh.lock done;
  Queue.add msg sh.queue;
  Condition.signal sh.nonempty;
  Mutex.unlock sh.lock

let register t ~conn_id ~salt0 ~enc_chunk =
  check_live t "register";
  if Hashtbl.mem t.registered conn_id then
    invalid_arg (Printf.sprintf "Shardpool.register: connection %d exists" conn_id);
  Hashtbl.add t.registered conn_id ();
  push t (shard_of t conn_id) (Register { conn_id; salt0; enc_chunk })

let check_known t conn_id op =
  if not (Hashtbl.mem t.registered conn_id) then
    invalid_arg (Printf.sprintf "Shardpool.%s: unknown connection %d" op conn_id)

let submit t ~conn_id wire =
  check_live t "submit";
  check_known t conn_id "submit";
  let seq = t.seq in
  t.seq <- seq + 1;
  t.pending <- t.pending + 1;
  push t (shard_of t conn_id) (Deliver { seq; conn_id; wire });
  Obs.incr obs_submitted;
  seq

let reset_conn t ~conn_id ~salt0 =
  check_live t "reset_conn";
  check_known t conn_id "reset_conn";
  push t (shard_of t conn_id) (Reset { conn_id; salt0 })

let unregister t ~conn_id =
  check_live t "unregister";
  if Hashtbl.mem t.registered conn_id then begin
    Hashtbl.remove t.registered conn_id;
    push t (shard_of t conn_id) (Unregister { conn_id })
  end

(* Block until the shard's mailbox is empty and its worker idle, then run
   [f] while still holding the lock: the mutex acquisition orders the
   worker's writes before the front's reads, so [f] may freely read the
   shard core. *)
let quiesce sh f =
  Mutex.lock sh.lock;
  while not (Queue.is_empty sh.queue && not sh.busy) do
    Condition.wait sh.idle sh.lock
  done;
  Fun.protect ~finally:(fun () -> Mutex.unlock sh.lock) (fun () -> f ())

let check_failed t =
  Array.iter (fun sh -> match sh.failed with Some e -> raise e | None -> ()) t.shards

let drain_results t =
  check_live t "drain";
  let results =
    Array.fold_left
      (fun acc sh ->
         quiesce sh (fun () ->
             let out = sh.out in
             sh.out <- [];
             List.rev_append out acc))
      [] t.shards
  in
  check_failed t;
  t.pending <- 0;
  List.sort (fun a b -> compare a.r_seq b.r_seq) results

let drain t ~f =
  List.iter (fun r -> f ~seq:r.r_seq ~conn_id:r.r_conn r.r_verdicts) (drain_results t)

let process_wire t ~conn_id wire =
  check_live t "process_wire";
  if t.pending > 0 then
    invalid_arg "Shardpool.process_wire: async submissions pending (drain first)";
  let seq = submit t ~conn_id wire in
  match List.find_opt (fun r -> r.r_seq = seq) (drain_results t) with
  | Some r -> r.r_verdicts
  | None ->
    (* the worker dropped the delivery: connection already blocked *)
    invalid_arg (Printf.sprintf "Middlebox.process: connection %d is blocked" conn_id)

let is_blocked t ~conn_id =
  check_live t "is_blocked";
  quiesce (shard_of t conn_id) (fun () -> Shard.is_blocked (shard_of t conn_id).core ~conn_id)

let stats t =
  check_live t "stats";
  Array.fold_left
    (fun acc sh -> Shard.merge_stats acc (quiesce sh (fun () -> Shard.stats sh.core)))
    Shard.empty_stats t.shards

let flow_stats t ~conn_id =
  check_live t "flow_stats";
  quiesce (shard_of t conn_id) (fun () -> Shard.flow_stats (shard_of t conn_id).core ~conn_id)

let fold_flows t ~init ~f =
  check_live t "fold_flows";
  Array.fold_left
    (fun acc sh -> quiesce sh (fun () -> Shard.fold_flows sh.core ~init:acc ~f))
    init t.shards

let shutdown t =
  if t.live then begin
    t.live <- false;
    Array.iter
      (fun sh ->
         Mutex.lock sh.lock;
         sh.stopping <- true;
         Condition.signal sh.nonempty;
         Mutex.unlock sh.lock)
      t.shards;
    Array.iter Domain.join t.workers;
    Obs.set_gauge obs_domains 0
  end

let with_pool ?domains ?capacity ?batch_max ~mode ~rules f =
  let t = create ?domains ?capacity ?batch_max ~mode ~rules () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
