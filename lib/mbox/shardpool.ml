module Obs = Bbx_obs.Obs
module Trace = Bbx_obs.Trace
module Pool = Bbx_exec.Pool

let obs_submitted = Obs.counter "bbx_shardpool_submitted_total"
let obs_dropped = Obs.counter "bbx_shardpool_dropped_total"
let obs_domains = Obs.gauge "bbx_shardpool_domains"

(* Per-delivery pipeline stages, microseconds: submit -> worker dequeue
   (queue wait) and the Shard inspection itself (service).  These are the
   daemon-facing names the ROADMAP's queue-wait-vs-service question needs;
   the generic mailbox residency is bbx_exec_queue_wait_us in Pool. *)
let us_buckets =
  [| 1; 5; 10; 25; 50; 100; 250; 500; 1000; 2500; 5000; 10000; 25000;
     50000; 100000; 250000; 1000000 |]

let obs_queue_wait = Obs.histogram "bbx_daemon_queue_wait_us" ~buckets:us_buckets
let obs_service = Obs.histogram "bbx_shard_service_us" ~buckets:us_buckets

let ph_queue = Trace.phase "queue_wait"
let ph_service = Trace.phase "service"

type conn_id = Shard.conn_id

type stats = Shard.stats

type result = {
  r_conn : conn_id;
  r_verdicts : Engine.verdict list;
}

(* The shard pool is a thin routing layer over the generic domain pool
   ({!Bbx_exec.Pool}): worker [i] owns one {!Shard}, every message for a
   connection goes to worker [conn_id mod domains], and the pool's
   per-worker FIFO mailboxes guarantee a connection's deliveries (and
   salt resets, registrations, rule updates) execute in submission order
   on one domain — so its per-token salt counters stay in lock-step with
   the sender. *)
type t = {
  pool : (Shard.t, result) Pool.t;
  registered : (conn_id, unit) Hashtbl.t;  (* front-side duplicate/unknown guard *)
}

(* Connection routing: dense conn ids spread perfectly evenly (important
   for scaling), arbitrary ids still land deterministically. *)
let shard_index t conn_id = (conn_id land max_int) mod Pool.domains t.pool

let default_domains = Pool.default_domains

let create ?domains ?capacity ?batch_max ?index ?tier ?budget ~mode ~rules () =
  let n = match domains with Some n -> n | None -> default_domains () in
  if n < 1 then invalid_arg "Shardpool.create: domains must be >= 1";
  let pool =
    Pool.create ~domains:n ?capacity ?batch_max
      ~state:(fun _ -> Shard.create ?index ?tier ?budget ~mode ~rules ()) ()
  in
  Obs.set_gauge obs_domains n;
  { pool; registered = Hashtbl.create 64 }

let domains t = Pool.domains t.pool

let check_live t op =
  if not (Pool.live t.pool) then
    invalid_arg (Printf.sprintf "Shardpool.%s: pool is shut down" op)

let register ?direction t ~conn_id ~salt0 ~enc_chunk =
  check_live t "register";
  if Hashtbl.mem t.registered conn_id then
    invalid_arg (Printf.sprintf "Shardpool.register: connection %d exists" conn_id);
  Hashtbl.add t.registered conn_id ();
  Pool.exec t.pool ~worker:(shard_index t conn_id) (fun core ->
      Shard.register ?direction core ~conn_id ~salt0 ~enc_chunk)

let check_known t conn_id op =
  if not (Hashtbl.mem t.registered conn_id) then
    invalid_arg (Printf.sprintf "Shardpool.%s: unknown connection %d" op conn_id)

(* Record retention rides the same per-worker FIFO mailbox as deliveries,
   so a record frame submitted before its token frames is guaranteed to
   reach the engine first — ordering matters because the record layer
   decrypts strictly in sequence. *)
let record_stream t ~conn_id record =
  check_live t "record_stream";
  check_known t conn_id "record_stream";
  Pool.exec t.pool ~worker:(shard_index t conn_id) (fun core ->
      Shard.record_stream core ~conn_id record)

let submit ?(tag = -1) t ~conn_id wire =
  check_live t "submit";
  check_known t conn_id "submit";
  (* [timing] is decided at submit time and captured by the closure, so a
     worker never reads the Obs/Trace switches mid-batch; [tag] is the
     caller's frame id (the wire seq for daemon deliveries) and keys the
     per-frame trace events together with [conn_id]. *)
  let timing = Obs.enabled () || Trace.enabled () in
  let t_sub = if timing then Trace.now_ns () else -1 in
  let seq =
    Pool.submit t.pool ~worker:(shard_index t conn_id) (fun core ->
        let t_deq = if timing then Trace.now_ns () else -1 in
        if timing then begin
          Obs.observe obs_queue_wait ((t_deq - t_sub) / 1000);
          Trace.record ph_queue ~id:tag ~conn:conn_id ~start_ns:t_sub
            ~dur_ns:(t_deq - t_sub)
        end;
        let r =
          if Shard.is_blocked core ~conn_id then begin
            Obs.incr obs_dropped;
            None
          end
          else
            Some { r_conn = conn_id; r_verdicts = Shard.process_wire core ~conn_id wire }
        in
        if timing then begin
          let t_done = Trace.now_ns () in
          Obs.observe obs_service ((t_done - t_deq) / 1000);
          Trace.record ph_service ~id:tag ~conn:conn_id ~start_ns:t_deq
            ~dur_ns:(t_done - t_deq)
        end;
        r)
  in
  Obs.incr obs_submitted;
  seq

let reset_conn t ~conn_id ~salt0 =
  check_live t "reset_conn";
  check_known t conn_id "reset_conn";
  Pool.exec t.pool ~worker:(shard_index t conn_id) (fun core ->
      Shard.reset_conn core ~conn_id ~salt0)

let update_rules t ~conn_id ~remove_sids ~add ~rules ~enc_chunk =
  check_live t "update_rules";
  check_known t conn_id "update_rules";
  Pool.exec t.pool ~worker:(shard_index t conn_id) (fun core ->
      Shard.update_rules core ~conn_id ~remove_sids ~add ~rules ~enc_chunk)

let unregister t ~conn_id =
  check_live t "unregister";
  if Hashtbl.mem t.registered conn_id then begin
    Hashtbl.remove t.registered conn_id;
    Pool.exec t.pool ~worker:(shard_index t conn_id) (fun core ->
        Shard.unregister core ~conn_id)
  end

let drain t ~f =
  check_live t "drain";
  Pool.drain t.pool ~f:(fun ~seq r -> f ~seq ~conn_id:r.r_conn r.r_verdicts)

let process_wire t ~conn_id wire =
  check_live t "process_wire";
  if Pool.pending t.pool > 0 then
    invalid_arg "Shardpool.process_wire: async submissions pending (drain first)";
  let seq = submit t ~conn_id wire in
  match List.assoc_opt seq (Pool.drain_list t.pool) with
  | Some r -> r.r_verdicts
  | None ->
    (* the worker dropped the delivery: connection already blocked *)
    invalid_arg (Printf.sprintf "Middlebox.process: connection %d is blocked" conn_id)

let is_blocked t ~conn_id =
  check_live t "is_blocked";
  Pool.quiesce t.pool ~worker:(shard_index t conn_id) (fun core ->
      Shard.is_blocked core ~conn_id)

let stats t =
  check_live t "stats";
  Pool.fold_workers t.pool ~init:Shard.empty_stats ~f:(fun acc core ->
      Shard.merge_stats acc (Shard.stats core))

let flow_stats t ~conn_id =
  check_live t "flow_stats";
  Pool.quiesce t.pool ~worker:(shard_index t conn_id) (fun core ->
      Shard.flow_stats core ~conn_id)

let fold_flows t ~init ~f =
  check_live t "fold_flows";
  Pool.fold_workers t.pool ~init ~f:(fun acc core -> Shard.fold_flows core ~init:acc ~f)

let shutdown t =
  if Pool.live t.pool then begin
    Pool.shutdown t.pool;
    Obs.set_gauge obs_domains 0
  end

let with_pool ?domains ?capacity ?batch_max ?index ?tier ?budget ~mode ~rules f =
  let t = create ?domains ?capacity ?batch_max ?index ?tier ?budget ~mode ~rules () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
