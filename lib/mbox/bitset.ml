(* A growable bit set over small non-negative ints (rule indices).  The
   fleet refactor replaces per-connection [(int, unit) Hashtbl.t] sets —
   ~6 words per entry plus bucket arrays — with one bit per rule:
   membership is a shift and a mask, the footprint is [n/8] bytes, and
   serialisation for connection migration is the raw byte string. *)

type t = { mutable bits : Bytes.t }

let create n = { bits = Bytes.make ((max n 0 + 7) / 8) '\000' }

let capacity t = Bytes.length t.bits * 8

let mem t i =
  i >= 0 && i < capacity t
  && Char.code (Bytes.get t.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

let ensure t i =
  if i >= capacity t then begin
    let grown = Bytes.make (max ((i lsr 3) + 1) (2 * Bytes.length t.bits)) '\000' in
    Bytes.blit t.bits 0 grown 0 (Bytes.length t.bits);
    t.bits <- grown
  end

let add t i =
  if i < 0 then invalid_arg "Bitset.add: negative index";
  ensure t i;
  let byte = i lsr 3 in
  Bytes.set t.bits byte
    (Char.chr (Char.code (Bytes.get t.bits byte) lor (1 lsl (i land 7))))

let clear t = Bytes.fill t.bits 0 (Bytes.length t.bits) '\000'

let iter f t =
  for byte = 0 to Bytes.length t.bits - 1 do
    let v = Char.code (Bytes.get t.bits byte) in
    if v <> 0 then
      for bit = 0 to 7 do
        if v land (1 lsl bit) <> 0 then f ((byte lsl 3) lor bit)
      done
  done

let cardinal t =
  let n = ref 0 in
  iter (fun _ -> incr n) t;
  !n

(* [remap t map ~size] rebuilds the set through a rule-index remap (old
   index -> new index, or -1 for removed), as produced by
   [Engine.remove_rules]. *)
let remap t map ~size =
  let t' = create size in
  iter (fun i -> if i < Array.length map && map.(i) >= 0 then add t' map.(i)) t;
  t'

let to_string t = Bytes.to_string t.bits

let of_string s = { bits = Bytes.of_string s }

let footprint_bytes t = Bytes.length t.bits + 3 * (Sys.word_size / 8)
