(** A middlebox managing many monitored connections.

    This is the deployment unit of Fig. 1: one in-network appliance, one
    ruleset, many sender/receiver pairs.  Each connection gets its own
    {!Engine} (per-connection keys mean per-connection encrypted rules and
    counters); the middlebox multiplexes them by connection id and keeps
    the aggregate statistics an operator would act on.

    Since the sharding refactor this module is a thin sequential front
    over exactly one {!Shard} (the per-shard core); {!Shardpool} runs many
    shards across OCaml domains behind the same connection-level
    semantics.  The sequential API below is unchanged and its verdicts
    stay byte-identical. *)

type conn_id = int

type stats = Shard.stats = {
  connections : int;        (** currently registered *)
  total_tokens : int;       (** encrypted tokens inspected *)
  total_keyword_hits : int;
  alerts : int;             (** rule verdicts across all connections *)
  blocked : int;            (** connections torn down by drop rules *)
}

(** Per-connection flow statistics (what a NetFlow-style export would
    carry for one monitored connection). *)
type flow_stats = Shard.flow_stats = {
  flow_tokens : int;        (** encrypted tokens inspected on this flow *)
  flow_hits : int;          (** keyword hits (monotonic, survives engine resets) *)
  flow_verdicts : int;      (** fresh rule verdicts reported *)
  flow_blocked : bool;
}

type t

(** [create ?index ?tier ?budget ~mode ~rules] — the ruleset is fixed for
    the box's lifetime (rule updates in deployments mean re-running rule
    preparation per connection anyway).  [index] (default
    {!Bbx_detect.Detect.Hash}) selects the cipher-index backend for every
    engine; [tier] (default [Protocol_III]) and [budget] configure each
    engine's escalation behaviour (see {!Engine.create}); [kernel]
    (default [Scalar]) is the AES path for tier-3 record decryption. *)
val create :
  ?index:Bbx_detect.Detect.index_backend ->
  ?tier:Bbx_rules.Classify.protocol_class ->
  ?budget:Engine.budget ->
  ?kernel:Bbx_dpienc.Dpienc.aes_kernel ->
  mode:Bbx_dpienc.Dpienc.mode -> rules:Bbx_rules.Rule.t list -> unit -> t

(** [register ?direction ?prepared ?keys ?prefilter t ~conn_id ~salt0
    ~enc_chunk] — called at connection setup, after obfuscated rule
    encryption yields this connection's [enc_chunk] oracle.
    [prepared]/[keys]/[prefilter] share one rule preparation across
    connections (see {!Engine.create}).  Raises [Invalid_argument] on
    duplicate ids. *)
val register :
  ?direction:string ->
  ?prepared:string array * string array ->
  ?keys:Bbx_detect.Detect.keyset ->
  ?prefilter:Engine.prefilter_prep ->
  t -> conn_id:conn_id -> salt0:int -> enc_chunk:(string -> string) -> unit

(** [record_stream t ~conn_id record] retains one sealed SSL record of
    the connection's stream for Protocol III probable-cause escalation
    (see {!Engine.record_stream}).  Feed records in stream order, before
    the delivery carrying the matching tokens. *)
val record_stream : t -> conn_id:conn_id -> string -> unit

(** [process t ~conn_id tokens] inspects a batch for one connection and
    returns the new rule verdicts (empty list when clean).  Connections
    whose drop-rules fire are marked blocked; processing a blocked or
    unknown connection raises [Invalid_argument]. *)
val process : t -> conn_id:conn_id -> Bbx_dpienc.Dpienc.enc_token list -> Engine.verdict list

(** [process_wire t ~conn_id wire] — same, straight off the wire encoding
    (no token list materialised). *)
val process_wire : t -> conn_id:conn_id -> string -> Engine.verdict list

(** [is_blocked t ~conn_id]. *)
val is_blocked : t -> conn_id:conn_id -> bool

(** [unregister t ~conn_id] — connection teardown (idempotent). *)
val unregister : t -> conn_id:conn_id -> unit

(** [engine t ~conn_id] — direct access for probable-cause key recovery. *)
val engine : t -> conn_id:conn_id -> Engine.t

val stats : t -> stats

(** [flow_stats t ~conn_id] — this connection's flow counters.  Raises
    [Invalid_argument] on unknown ids, like {!process}. *)
val flow_stats : t -> conn_id:conn_id -> flow_stats

(** [fold_flows t ~init ~f] folds over every registered connection's flow
    stats (iteration order unspecified). *)
val fold_flows : t -> init:'a -> f:('a -> conn_id -> flow_stats -> 'a) -> 'a

(** [export_conn t ~conn_id] serialises and removes one connection for
    migration; [import_conn] validates and installs an exported blob
    (raising [Invalid_argument] on malformed state, mode mismatch, or a
    duplicate id).  See {!Shard.export_conn}/{!Shard.parse_export}. *)
val export_conn : t -> conn_id:conn_id -> string

val import_conn : t -> conn_id:conn_id -> string -> unit

(** Approximate resident bytes of all per-connection state. *)
val footprint_bytes : t -> int
