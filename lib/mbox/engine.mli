(** The middlebox detection engine (paper §6): one instance per connection.

    The engine is built from the ruleset and an [enc_chunk] oracle giving
    [AES_k(chunk)] for each distinct rule-keyword chunk — in production
    that oracle is obfuscated rule encryption (garbled circuits + OT, see
    {!Blindbox.Session}); tests may pass the direct encryption.

    Keyword-level matches come from {!Bbx_detect.Detect}; this module
    lifts them to rule-level verdicts:

    - {b Protocol I}: a rule fires when its single keyword's chunks all
      match at consistent offsets;
    - {b Protocol II}: multiple keywords plus
      offset/depth/distance/within constraints, evaluated with the same
      backtracking semantics as the plaintext reference
      ({!Bbx_rules.Classify.matches_plaintext});
    - {b Protocol III}: when a suspicious keyword matches, the engine
      recovers [k_ssl] from the paired ciphertext (probable cause); the
      caller decrypts the recorded stream and passes the plaintext back so
      pcre rules can run. *)

type verdict = {
  rule_idx : int;
  rule : Bbx_rules.Rule.t;
  via : [ `Exact_match | `Probable_cause ];
}

type t

(** [distinct_chunks rules] — every distinct token-sized keyword chunk the
    ruleset needs, in first-appearance order.  This is the exact set
    obfuscated rule encryption must cover. *)
val distinct_chunks : Bbx_rules.Rule.t list -> string array

(** [create ?index ~mode ~salt0 ~rules ~enc_chunk] — [enc_chunk] is
    consulted once per distinct chunk at construction time.  [index]
    (default {!Bbx_detect.Detect.Hash}) selects the cipher-index backend
    and is remembered for detection-state rebuilds ({!remove_rules}). *)
val create :
  ?index:Bbx_detect.Detect.index_backend ->
  mode:Bbx_dpienc.Dpienc.mode ->
  salt0:int ->
  rules:Bbx_rules.Rule.t list ->
  enc_chunk:(string -> string) ->
  unit ->
  t

(** [process t tokens] feeds encrypted tokens in stream order. *)
val process : t -> Bbx_dpienc.Dpienc.enc_token list -> unit

(** [process_wire t wire] feeds a wire-encoded token stream (the output of
    {!Bbx_dpienc.Dpienc.sender_encrypt_into}/[encode_tokens]) without
    materialising a token list; returns the number of tokens processed. *)
val process_wire : t -> string -> int

(** [keyword_hits t] — keyword-level (chunk, stream offset) matches so far
    (the quantity behind the paper's 97.1% keyword-recall number). *)
val keyword_hits : t -> (string * int) list

(** [hit_count t] — monotonic count of keyword hits ever recorded on this
    engine, in O(1).  Unlike {!keyword_hits} it is {e not} cleared by
    {!reset}, so callers can account per-delivery deltas without folding
    the hit history. *)
val hit_count : t -> int

(** [recovered_key t] — [Some k_ssl] once any keyword of a Protocol III
    rule has matched in [Probable] mode. *)
val recovered_key : t -> string option

(** [verdicts ?plaintext t] evaluates rules.  Protocol I/II rules are
    decided from the encrypted-side events alone; Protocol III rules are
    evaluated on [plaintext] when provided (pass the stream decrypted under
    {!recovered_key}). *)
val verdicts : ?plaintext:string -> t -> verdict list

(** [add_rules t ~rules ~enc_chunk] extends a live connection with new
    rules (the rule generator shipped an update).  Only chunks not already
    prepared consult [enc_chunk]; returns how many fresh chunks were
    added. *)
val add_rules : t -> rules:Bbx_rules.Rule.t list -> enc_chunk:(string -> string) -> int

(** [remove_rules t ~sids] drops every rule whose [sid] is in [sids] (an
    RG update retired them).  Returns [(orphans, remap)]: [orphans] are
    the chunks no retained rule needs (gone from the detection tree — a
    payload carrying only removed keywords no longer registers hits), and
    [remap] maps each old [verdict.rule_idx] to its new index, or [-1]
    for removed rules, so callers can rewrite per-rule-index state.
    The detection tree is rebuilt from the retained chunks' cached
    encryptions under the current salt epoch, restarting their salt
    counters and clearing hit evidence — follow with a sender-side salt
    reset, exactly as after {!add_rules} (Session/Fleet force one).
    [~sids:[]] is a no-op returning [([], [||])]. *)
val remove_rules : t -> sids:int list -> string list * int array

(** [reset t ~salt0] forwards the sender's periodic salt reset.  Per-chunk
    hit evidence ({!keyword_hits}, and hence {!verdicts} derived from it)
    is cleared; {!hit_count} (monotonic accounting) and {!recovered_key}
    (probable cause is a connection-lifetime fact — a salt rotation does
    not un-recover [k_ssl]) deliberately survive. *)
val reset : t -> salt0:int -> unit

(** Distinct chunk count (tree size). *)
val chunk_count : t -> int
