(** The middlebox detection engine (paper §6): one instance per connection.

    The engine is built from the ruleset and an [enc_chunk] oracle giving
    [AES_k(chunk)] for each distinct rule-keyword chunk — in production
    that oracle is obfuscated rule encryption (garbled circuits + OT, see
    {!Blindbox.Session}); tests may pass the direct encryption.

    Keyword-level matches come from {!Bbx_detect.Detect}; this module
    lifts them to rule-level verdicts through a tiered escalation state
    machine:

    - {b Protocol I}: a rule fires when its single keyword's chunks all
      match at consistent offsets;
    - {b Protocol II}: multiple keywords plus
      offset/depth/distance/within constraints, evaluated with the same
      backtracking semantics as the plaintext reference
      ({!Bbx_rules.Classify.matches_plaintext});
    - {b Protocol III}: when a suspicious keyword matches, the engine
      recovers [k_ssl] from the paired ciphertext (probable cause),
      decrypts the retained record stream ({!record_stream}) and runs an
      Aho-Corasick prefilter plus full-rule regex confirmation over the
      recovered plaintext, under per-flow byte/time budgets.  Budget
      exhaustion degrades to a [`Budget_exceeded] verdict ("flagged, not
      matched") for every rule whose encrypted-side keyword gate fired.

    The engine runs at a configurable {!tier}: rules requiring a higher
    protocol than the configured tier are ignored entirely. *)

(** How a verdict was reached — the wire-visible detail. *)
type detail = [ `Exact_hit | `Composite_match | `Regex_match | `Budget_exceeded ]

(** Stable short name per detail: ["exact-hit"], ["composite-match"],
    ["regex-match"], ["budget-exceeded"]. *)
val detail_name : detail -> string

type verdict = {
  rule_idx : int;
  rule : Bbx_rules.Rule.t;
  via : [ `Exact_match | `Probable_cause ];
  detail : detail;
}

(** Per-flow escalation budgets.  [max_plain_bytes] caps retained +
    decrypted stream bytes, [max_scan_ms] caps cumulative regex-confirm
    time; [0] means unlimited for either.  Exceeding a budget is sticky
    (record-layer decryption is strictly in-order, so a dropped record
    makes the rest of the stream unrecoverable). *)
type budget = { max_plain_bytes : int; max_scan_ms : int }

(** 4 MiB of plaintext, no time cap. *)
val default_budget : budget

type t

(** [distinct_chunks rules] — every distinct token-sized keyword chunk the
    ruleset needs, in first-appearance order.  This is the exact set
    obfuscated rule encryption must cover. *)
val distinct_chunks : Bbx_rules.Rule.t list -> string array

(** A shared Protocol III prefilter preparation: the rule protocol
    classes, the Aho-Corasick automaton over the decrypt-tier content
    patterns, and the per-rule pattern-needs map — everything the
    prefilter derives from the ruleset alone.  Immutable after
    construction, so one prep serves every engine running the same
    (tenant, generation) ruleset; without sharing, the automaton's dense
    transition tables (~2 KiB per trie node) dominate per-connection
    footprint. *)
type prefilter_prep

(** [prepare_prefilter rules] — compute once per (tenant, generation),
    pass to every {!create}. *)
val prepare_prefilter : Bbx_rules.Rule.t list -> prefilter_prep

(** [create ?index ?tier ?budget ?direction ?prepared ?keys ~mode ~salt0
    ~rules ~enc_chunk] — [enc_chunk] is consulted once per distinct chunk
    at construction time.  [index] (default {!Bbx_detect.Detect.Hash})
    selects the cipher-index backend and is remembered for
    detection-state rebuilds ({!remove_rules}).  [tier] (default
    [Protocol_III]) is the highest protocol this engine executes;
    [budget] bounds Protocol III work; [direction] (default
    ["client->server"]) is the record-layer direction of the inspected
    stream, needed to decrypt records shipped via {!record_stream};
    [kernel] (default [Scalar]) picks the AES path for that tier-3
    record decryption — [Bitsliced] batches CTR keystream generation
    through {!Bbx_crypto.Aes_bs} (byte-identical plaintext recovery).

    At fleet scale the per-connection setup cost is chunk recomputation,
    the [enc_chunk] calls, AES key expansion and the prefilter automaton
    build: [prepared] (must equal
    [(distinct_chunks rules, Array.map enc_chunk ...)] — borrowed
    read-only, never mutated) skips the first two, [keys] (a shared
    {!Bbx_detect.Detect.keyset} over the same encs) skips the third, and
    [prefilter] (a shared {!prepare_prefilter} over the same rules —
    raises [Invalid_argument] on a rule-count mismatch) skips the fourth.
    With [prepared] and [keys], [enc_chunk] is not called at construction
    (it is still used by later {!add_rules}).  Rule updates
    ({!add_rules}/{!remove_rules}) rebuild an engine-owned prefilter —
    pass the next generation's shared prep through the update path to
    keep it shared. *)
val create :
  ?index:Bbx_detect.Detect.index_backend ->
  ?tier:Bbx_rules.Classify.protocol_class ->
  ?budget:budget ->
  ?direction:string ->
  ?kernel:Bbx_dpienc.Dpienc.aes_kernel ->
  ?prepared:string array * string array ->
  ?keys:Bbx_detect.Detect.keyset ->
  ?prefilter:prefilter_prep ->
  mode:Bbx_dpienc.Dpienc.mode ->
  salt0:int ->
  rules:Bbx_rules.Rule.t list ->
  enc_chunk:(string -> string) ->
  unit ->
  t

(** The tier this engine was configured with. *)
val tier : t -> Bbx_rules.Classify.protocol_class

(** The DPIEnc mode this engine inspects. *)
val mode : t -> Bbx_dpienc.Dpienc.mode

(** [process t tokens] feeds encrypted tokens in stream order. *)
val process : t -> Bbx_dpienc.Dpienc.enc_token list -> unit

(** [process_wire t wire] feeds a wire-encoded token stream (the output of
    {!Bbx_dpienc.Dpienc.sender_encrypt_into}/[encode_tokens]) without
    materialising a token list; returns the number of tokens processed. *)
val process_wire : t -> string -> int

(** [record_stream t record] retains one sealed SSL record of the
    inspected stream (in order, including its 1-byte frame tag inside)
    for probable-cause decryption.  A no-op unless the engine is in
    [Probable] mode at tier [Protocol_III].  Records beyond the byte
    budget are dropped (counted in [bbx_tier_records_dropped_total]) and
    the flow degrades to exhausted. *)
val record_stream : t -> string -> unit

(** [keyword_hits t] — keyword-level (chunk, stream offset) matches so far
    (the quantity behind the paper's 97.1% keyword-recall number). *)
val keyword_hits : t -> (string * int) list

(** [hit_count t] — monotonic count of keyword hits ever recorded on this
    engine, in O(1).  Unlike {!keyword_hits} it is {e not} cleared by
    {!reset}, so callers can account per-delivery deltas without folding
    the hit history. *)
val hit_count : t -> int

(** [recovered_key t] — [Some k_ssl] once any keyword of a Protocol III
    rule has matched in [Probable] mode. *)
val recovered_key : t -> string option

(** [decrypted_stream t] — the plaintext recovered so far from records
    shipped via {!record_stream} ([None] until {!recovered_key} is, or
    when the engine does not retain records). *)
val decrypted_stream : t -> string option

(** Where the flow sits in the escalation state machine: [`Idle] (no
    keyword evidence), [`Gated] (keyword hits but no key), [`Unlocked]
    ([k_ssl] recovered, stream decryptable), [`Exhausted] (budget blown or
    stream undecryptable — sticky). *)
val escalation : t -> [ `Idle | `Gated | `Unlocked | `Exhausted ]

(** [verdicts ?plaintext t] evaluates rules at the configured tier.
    Protocol I/II rules are decided from the encrypted-side events alone;
    Protocol III rules are confirmed against the probable-cause-recovered
    stream (or against [plaintext] when the caller passes it, taking
    precedence).  Decisions are sticky: once a rule has fired (or been
    budget-flagged) it is re-emitted by every later call, across salt
    resets — callers dedup by [rule_idx], which Shard/Session already
    do. *)
val verdicts : ?plaintext:string -> t -> verdict list

(** [add_rules t ~rules ~enc_chunk] extends a live connection with new
    rules (the rule generator shipped an update).  Only chunks not already
    prepared consult [enc_chunk]; returns how many fresh chunks were
    added. *)
val add_rules : t -> rules:Bbx_rules.Rule.t list -> enc_chunk:(string -> string) -> int

(** [remove_rules t ~sids] drops every rule whose [sid] is in [sids] (an
    RG update retired them).  Returns [(orphans, remap)]: [orphans] are
    the chunks no retained rule needs (gone from the detection tree — a
    payload carrying only removed keywords no longer registers hits), and
    [remap] maps each old [verdict.rule_idx] to its new index, or [-1]
    for removed rules, so callers can rewrite per-rule-index state.
    The engine's own per-rule escalation state (sticky decisions, keyword
    gates) is remapped internally.
    The detection tree is rebuilt from the retained chunks' cached
    encryptions under the current salt epoch, restarting their salt
    counters and clearing hit evidence — follow with a sender-side salt
    reset, exactly as after {!add_rules} (Session/Fleet force one).
    [~sids:[]] is a no-op returning [([], [||])]. *)
val remove_rules : t -> sids:int list -> string list * int array

(** [set_prefilter t pp] swaps in a shared prefilter prep for the
    engine-owned one a rule update rebuilt ([pp] must cover the engine's
    current post-update ruleset; raises [Invalid_argument] on a
    rule-count mismatch).  Prefilter evidence is re-derived from the
    retained stream on the next delivery, exactly as after the update
    itself. *)
val set_prefilter : t -> prefilter_prep -> unit

(** [reset t ~salt0] forwards the sender's periodic salt reset.  Per-chunk
    hit evidence ({!keyword_hits}, and fresh {!verdicts} derived from it)
    is cleared; {!hit_count} (monotonic accounting), {!recovered_key}
    (probable cause is a connection-lifetime fact — a salt rotation does
    not un-recover [k_ssl]) and the whole escalation state downstream of
    it (sticky decisions, keyword gates, the retained/decrypted stream,
    budget accounting) deliberately survive. *)
val reset : t -> salt0:int -> unit

(** Distinct chunk count (tree size). *)
val chunk_count : t -> int

(** Approximate resident bytes of this connection's engine state (the
    [bbx_conn_bytes] accounting input).  Structures shared across a
    fleet — borrowed [?prepared] arrays, shared keysets — are charged to
    their owner, not here. *)
val footprint_bytes : t -> int

(** {1 Snapshot / restore (connection migration)}

    A snapshot is a self-contained binary image of one connection's
    inspection state: ruleset (as text), chunk encryptions, salt epoch
    and per-keyword counters, hit evidence, sticky decisions and keyword
    gates, recovered [k_ssl], sealed pending records, record-layer
    sequence, recovered plaintext, prefilter progress and budget
    accounting.  [restore (snapshot t)] yields an engine observably
    identical to [t] — same future verdicts, stats and escalation
    behaviour (pinned by the migration differential tests). *)

(** Serialise the complete per-connection state (format v1). *)
val snapshot : t -> string

(** Rebuild an engine from {!snapshot} output.  Raises
    [Invalid_argument] on any malformed, truncated or inconsistent blob
    — callers must validate untrusted blobs on the front side (by calling
    this) before handing state to a worker domain.  [kernel] (default
    [Scalar]) is host configuration, not connection state, so it is not
    carried in the blob — the restoring host picks its own AES path. *)
val restore : ?kernel:Bbx_dpienc.Dpienc.aes_kernel -> string -> t
