(** A middlebox sharded across OCaml domains.

    A thin routing layer over {!Bbx_exec.Pool}: one worker domain per
    shard, each owning a private {!Shard} — its own per-connection
    detection engines and connection table, no shared mutable detection
    state.  The front feeds workers through the pool's per-worker bounded
    mailboxes and routes every message for a connection to its pinned
    shard (default placement [conn_id mod domains]; {!migrate} can re-pin
    a live connection), so a connection's deliveries (and salt resets,
    rule updates) execute in submission order on one domain and its
    per-token salt counters stay in lock-step with the sender.

    Two usage styles:

    - {b Synchronous}: {!process_wire} behaves exactly like
      {!Middlebox.process_wire} — submit one delivery, wait, return its
      verdicts (differential-tested to be byte-identical).
    - {b Pipelined}: {!submit} many deliveries (possibly for many
      connections, fanning out across domains), then {!drain} once.
      [drain] quiesces every worker and replays completed verdicts in
      global submission order, so callbacks are deterministic regardless
      of how shards interleaved.

    Deliveries submitted to a connection after one of its drop-rules
    fired are silently dropped by the worker (counted in
    [bbx_shardpool_dropped_total]); the synchronous path converts that
    drop into the [Invalid_argument] the sequential middlebox raises.

    Reads ({!stats}, {!flow_stats}, {!fold_flows}, {!is_blocked}) quiesce
    the relevant workers first, so they observe everything submitted
    before the call.

    A pool holds OS threads: always {!shutdown} it (or use
    {!with_pool}). *)

type conn_id = Shard.conn_id

type stats = Shard.stats

type t

(** [create ?domains ?capacity ?batch_max ?index ~mode ~rules ()] spawns
    [domains] worker domains (default: [recommended_domain_count - 1],
    at least 1).  [capacity] bounds each mailbox (submitting past it
    blocks until the worker catches up); [batch_max] caps how many
    messages a worker dequeues per lock acquisition.  [index] (default
    {!Bbx_detect.Detect.Hash}) selects the cipher-index backend every
    shard builds its engines with; [tier]/[budget] configure every
    engine's escalation behaviour (see {!Shard.create}); [kernel]
    (default [Scalar]) is the AES path every shard's engines use for
    tier-3 record decryption, and the path imported connections adopt. *)
val create :
  ?domains:int ->
  ?capacity:int ->
  ?batch_max:int ->
  ?index:Bbx_detect.Detect.index_backend ->
  ?tier:Bbx_rules.Classify.protocol_class ->
  ?budget:Engine.budget ->
  ?kernel:Bbx_dpienc.Dpienc.aes_kernel ->
  mode:Bbx_dpienc.Dpienc.mode ->
  rules:Bbx_rules.Rule.t list ->
  unit ->
  t

(** Number of worker domains (= shards). *)
val domains : t -> int

(** [register ?direction ?prepared ?keys ?prefilter t ~conn_id ~salt0
    ~enc_chunk] — as {!Middlebox.register}; raises [Invalid_argument] on
    duplicate ids.  [enc_chunk] runs on the owning worker domain and must
    not share mutable state with other connections' oracles.
    [prepared]/[keys]/[prefilter] share one immutable rule preparation,
    expanded keyset and prefilter automaton across the fleet — safe
    across domains precisely because they are never written after
    publication (see {!Engine.create}). *)
val register :
  ?direction:string ->
  ?prepared:string array * string array ->
  ?keys:Bbx_detect.Detect.keyset ->
  ?prefilter:Engine.prefilter_prep ->
  t -> conn_id:conn_id -> salt0:int -> enc_chunk:(string -> string) -> unit

(** [record_stream t ~conn_id record] enqueues one sealed SSL record for
    probable-cause retention ({!Shard.record_stream}).  It rides the same
    per-worker FIFO as {!submit}, so submit a connection's record before
    the delivery carrying its tokens and the engine sees them in that
    order. *)
val record_stream : t -> conn_id:conn_id -> string -> unit

(** [submit ?tag t ~conn_id wire] enqueues one wire delivery and returns
    its submission ticket (a global sequence number, strictly increasing).
    Raises [Invalid_argument] on unknown connections.  Results are
    collected by {!drain}.

    Each delivery is timed through two stages — submit-to-dequeue
    ([bbx_daemon_queue_wait_us]) and shard inspection
    ([bbx_shard_service_us]) — and, when {!Bbx_obs.Trace} is recording,
    emits [queue_wait]/[service] flight-recorder events keyed by
    [(conn_id, tag)].  [tag] is the caller's frame id (the daemon passes
    the wire seq; default [-1] = untagged). *)
val submit : ?tag:int -> t -> conn_id:conn_id -> string -> int

(** [drain t ~f] waits for all pending work, then calls
    [f ~seq ~conn_id verdicts] once per completed delivery in submission
    ([seq]) order.  Dropped deliveries (blocked connections) get no
    callback.  Re-raises the first exception a worker hit, if any. *)
val drain : t -> f:(seq:int -> conn_id:conn_id -> Engine.verdict list -> unit) -> unit

(** [process_wire t ~conn_id wire] — synchronous single delivery with
    {!Middlebox.process_wire} semantics (raises [Invalid_argument] on
    blocked/unknown connections).  Raises if async submissions are
    pending; drain first. *)
val process_wire : t -> conn_id:conn_id -> string -> Engine.verdict list

(** [reset_conn t ~conn_id ~salt0] enqueues a salt reset; it takes effect
    after every delivery submitted before it (mailbox FIFO), matching the
    sender-side reset point. *)
val reset_conn : t -> conn_id:conn_id -> salt0:int -> unit

(** [update_rules t ~conn_id ~remove_sids ~add ~rules ~enc_chunk]
    enqueues a rule update for one connection (see
    {!Shard.update_rules}); like a salt reset it takes effect after every
    delivery submitted before it, so the caller can follow it with
    {!reset_conn} and keep sender and engine in lock-step.  [enc_chunk]
    runs on the owning worker domain and must not share mutable state
    with other connections' oracles. *)
val update_rules :
  ?prefilter:Engine.prefilter_prep ->
  t ->
  conn_id:conn_id ->
  remove_sids:int list ->
  add:Bbx_rules.Rule.t list ->
  rules:Bbx_rules.Rule.t list ->
  enc_chunk:(string -> string) ->
  unit

(** [unregister t ~conn_id] — idempotent teardown. *)
val unregister : t -> conn_id:conn_id -> unit

val is_blocked : t -> conn_id:conn_id -> bool

(** Aggregate statistics summed over all shards (quiesces first). *)
val stats : t -> stats

val flow_stats : t -> conn_id:conn_id -> Shard.flow_stats

val fold_flows : t -> init:'a -> f:('a -> conn_id -> Shard.flow_stats -> 'a) -> 'a

(** {1 Connection migration}

    A live connection can be drained off its shard and resumed elsewhere:
    another shard of the same pool ({!migrate}), or another pool/daemon
    entirely ({!export_conn} on the source, {!import_conn} on the
    destination).  The blob is {!Shard.export_conn} output — engine
    snapshot plus shard wrapper state — and a migrated connection is
    observably identical to one that never moved (differential-tested:
    same future verdicts, wire frames and summed stats). *)

(** [export_conn t ~conn_id] quiesces the owning worker — draining every
    message already submitted for the connection through its FIFO mailbox
    — then serialises and removes the connection.  Results of deliveries
    drained this way are still returned by the next {!drain}.  Raises
    [Invalid_argument] on unknown ids. *)
val export_conn : t -> conn_id:conn_id -> string

(** [import_conn ?shard t ~conn_id blob] validates [blob] on the front
    side ({!Shard.parse_export} — a malformed or mode-mismatched blob
    raises [Invalid_argument] here and never reaches a worker) and
    installs the connection on [shard] (default: the [conn_id]-hash
    placement).  Raises on duplicate ids and out-of-range shards. *)
val import_conn : ?shard:int -> t -> conn_id:conn_id -> string -> unit

(** [migrate t ~conn_id ~shard] re-pins a live connection onto another
    shard of this pool (export + import; no-op when already there). *)
val migrate : t -> conn_id:conn_id -> shard:int -> unit

(** The shard currently owning [conn_id].  Raises [Invalid_argument] on
    unknown ids. *)
val conn_shard : t -> conn_id:conn_id -> int

(** Registered-connection count per shard (index = shard). *)
val conns_per_shard : t -> int array

(** [rebalance t] migrates connections from shards above the even-split
    ceiling to shards below it and returns how many moved.  Placement
    only — verdict streams and stats are invariant under migration. *)
val rebalance : t -> int

(** Approximate resident bytes of all per-connection state across every
    shard (quiesces all workers; refreshes the [bbx_conn_bytes] gauge). *)
val footprint_bytes : t -> int

(** [shutdown t] drains remaining mailboxes, stops and joins every worker
    domain.  Idempotent; the pool is unusable afterwards. *)
val shutdown : t -> unit

(** [with_pool ... f] — {!create}, run [f], always {!shutdown}. *)
val with_pool :
  ?domains:int ->
  ?capacity:int ->
  ?batch_max:int ->
  ?index:Bbx_detect.Detect.index_backend ->
  ?tier:Bbx_rules.Classify.protocol_class ->
  ?budget:Engine.budget ->
  ?kernel:Bbx_dpienc.Dpienc.aes_kernel ->
  mode:Bbx_dpienc.Dpienc.mode ->
  rules:Bbx_rules.Rule.t list ->
  (t -> 'a) ->
  'a
