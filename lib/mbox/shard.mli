(** The per-shard middlebox core: many monitored connections, one owner.

    This is the sequential heart of the middlebox tier.  {!Middlebox}
    wraps exactly one shard behind the historical API; {!Shardpool} owns
    one shard per worker domain and feeds each through a mailbox.

    {b Ownership}: a shard is single-owner mutable state — every
    connection table, engine and counter in it may be touched by at most
    one domain at a time.  {!Shardpool} enforces this by construction
    (only the worker domain that owns a shard executes its messages, and
    the front reads shard state only after quiescing the worker under the
    shard mutex).  Nothing in this module locks. *)

type conn_id = int

type stats = {
  connections : int;        (** currently registered *)
  total_tokens : int;       (** encrypted tokens inspected *)
  total_keyword_hits : int;
  alerts : int;             (** rule verdicts across all connections *)
  blocked : int;            (** connections torn down by drop rules *)
}

(** Per-connection flow statistics (what a NetFlow-style export would
    carry for one monitored connection). *)
type flow_stats = {
  flow_tokens : int;        (** encrypted tokens inspected on this flow *)
  flow_hits : int;          (** keyword hits (monotonic, survives engine resets) *)
  flow_verdicts : int;      (** fresh rule verdicts reported *)
  flow_blocked : bool;
}

type t

(** [create ?index ?tier ?budget ~mode ~rules] — [index] (default
    {!Bbx_detect.Detect.Hash}) is the cipher-index backend used by every
    engine this shard registers; [tier] (default [Protocol_III]) and
    [budget] (default {!Engine.default_budget}) configure every engine's
    escalation behaviour; [kernel] (default [Scalar]) is the AES path
    every engine uses for tier-3 record decryption. *)
val create :
  ?index:Bbx_detect.Detect.index_backend ->
  ?tier:Bbx_rules.Classify.protocol_class ->
  ?budget:Engine.budget ->
  ?kernel:Bbx_dpienc.Dpienc.aes_kernel ->
  mode:Bbx_dpienc.Dpienc.mode -> rules:Bbx_rules.Rule.t list -> unit -> t

(** The DPIEnc mode this shard inspects. *)
val mode : t -> Bbx_dpienc.Dpienc.mode

(** [register ?direction ?prepared ?keys ?prefilter t ~conn_id ~salt0
    ~enc_chunk] — raises [Invalid_argument] on duplicate ids.
    [enc_chunk] is consulted on the calling (owning) domain.
    [direction] is the record-layer direction of the inspected stream;
    [prepared]/[keys]/[prefilter] are the shared per-(tenant, generation)
    chunk/enc arrays, expanded keyset and prefilter prep that make
    registration O(1) in ruleset size and keep per-connection footprint
    flat (see {!Engine.create}). *)
val register :
  ?direction:string ->
  ?prepared:string array * string array ->
  ?keys:Bbx_detect.Detect.keyset ->
  ?prefilter:Engine.prefilter_prep ->
  t -> conn_id:conn_id -> salt0:int -> enc_chunk:(string -> string) -> unit

(** [record_stream t ~conn_id record] retains one sealed SSL record for
    probable-cause escalation ({!Engine.record_stream}).  Ignored on
    blocked connections; raises [Invalid_argument] on unknown ids. *)
val record_stream : t -> conn_id:conn_id -> string -> unit

(** [process t ~conn_id tokens] inspects a batch and returns the new rule
    verdicts.  Raises [Invalid_argument] on blocked or unknown ids. *)
val process : t -> conn_id:conn_id -> Bbx_dpienc.Dpienc.enc_token list -> Engine.verdict list

(** [process_wire t ~conn_id wire] — same, straight off the wire encoding. *)
val process_wire : t -> conn_id:conn_id -> string -> Engine.verdict list

val is_blocked : t -> conn_id:conn_id -> bool

(** [unregister t ~conn_id] — connection teardown (idempotent). *)
val unregister : t -> conn_id:conn_id -> unit

(** [engine t ~conn_id] — direct access for probable-cause key recovery. *)
val engine : t -> conn_id:conn_id -> Engine.t

(** [reset_conn t ~conn_id ~salt0] forwards a sender salt reset to the
    connection's engine. *)
val reset_conn : t -> conn_id:conn_id -> salt0:int -> unit

(** [update_rules ?prefilter t ~conn_id ~remove_sids ~add ~rules
    ~enc_chunk] applies
    a rule update to one connection's engine: rules with a sid in
    [remove_sids] are retired ({!Engine.remove_rules} — the connection's
    reported-rule set is remapped across the index shift), [add] rules
    are appended ({!Engine.add_rules}, consulting [enc_chunk] for fresh
    chunks), and [rules] — the full post-update ruleset — becomes the
    shard's ruleset for future registrations.  [prefilter] — the shared
    prep for the post-update ruleset — replaces the engine-owned
    prefilter the update rebuilt ({!Engine.set_prefilter}).  Follow with
    {!reset_conn}, as after any rule update. *)
val update_rules :
  ?prefilter:Engine.prefilter_prep ->
  t ->
  conn_id:conn_id ->
  remove_sids:int list ->
  add:Bbx_rules.Rule.t list ->
  rules:Bbx_rules.Rule.t list ->
  enc_chunk:(string -> string) ->
  unit

val stats : t -> stats

(** [merge_stats a b] — field-wise sum, for aggregating shards. *)
val merge_stats : stats -> stats -> stats

val empty_stats : stats

val flow_stats : t -> conn_id:conn_id -> flow_stats

val fold_flows : t -> init:'a -> f:('a -> conn_id -> flow_stats -> 'a) -> 'a

(** {1 Connection export / import (migration)}

    A connection can be drained from one shard and resumed on another —
    same pool, another pool, or another daemon.  The blob wraps
    {!Engine.snapshot} plus the shard-level wrapper state (blocked flag,
    reported-rule bitset, flow counters).  Aggregate shard totals stay
    where they accrued: migration moves a connection's future, not its
    history, so stats summed across shards match an unmigrated run. *)

(** [export_conn t ~conn_id] serialises and {e removes} the connection
    (connection-gauge −1).  Raises [Invalid_argument] on unknown ids. *)
val export_conn : t -> conn_id:conn_id -> string

(** A parsed, fully validated export blob, ready to adopt. *)
type imported

(** [parse_export ?mode ?kernel blob] validates and rebuilds the
    connection state.  Raises [Invalid_argument] on any malformed blob,
    or when [mode] is given and does not match the snapshot — call this
    on the front side so worker domains only ever see valid state.
    [kernel] (default [Scalar]) is the adopting host's AES path — it is
    host configuration, never part of the blob. *)
val parse_export :
  ?mode:Bbx_dpienc.Dpienc.mode -> ?kernel:Bbx_dpienc.Dpienc.aes_kernel ->
  string -> imported

(** [adopt t ~conn_id c] installs a parsed connection (gauge +1).
    Infallible (replaces any existing [conn_id] — callers check for
    duplicates before parsing). *)
val adopt : t -> conn_id:conn_id -> imported -> unit

(** Currently registered connections on this shard. *)
val conn_count : t -> int

(** Approximate resident bytes of all per-connection state on this shard
    (the [bbx_conn_bytes] input; see {!Engine.footprint_bytes}). *)
val footprint_bytes : t -> int
