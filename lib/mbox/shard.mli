(** The per-shard middlebox core: many monitored connections, one owner.

    This is the sequential heart of the middlebox tier.  {!Middlebox}
    wraps exactly one shard behind the historical API; {!Shardpool} owns
    one shard per worker domain and feeds each through a mailbox.

    {b Ownership}: a shard is single-owner mutable state — every
    connection table, engine and counter in it may be touched by at most
    one domain at a time.  {!Shardpool} enforces this by construction
    (only the worker domain that owns a shard executes its messages, and
    the front reads shard state only after quiescing the worker under the
    shard mutex).  Nothing in this module locks. *)

type conn_id = int

type stats = {
  connections : int;        (** currently registered *)
  total_tokens : int;       (** encrypted tokens inspected *)
  total_keyword_hits : int;
  alerts : int;             (** rule verdicts across all connections *)
  blocked : int;            (** connections torn down by drop rules *)
}

(** Per-connection flow statistics (what a NetFlow-style export would
    carry for one monitored connection). *)
type flow_stats = {
  flow_tokens : int;        (** encrypted tokens inspected on this flow *)
  flow_hits : int;          (** keyword hits (monotonic, survives engine resets) *)
  flow_verdicts : int;      (** fresh rule verdicts reported *)
  flow_blocked : bool;
}

type t

(** [create ?index ?tier ?budget ~mode ~rules] — [index] (default
    {!Bbx_detect.Detect.Hash}) is the cipher-index backend used by every
    engine this shard registers; [tier] (default [Protocol_III]) and
    [budget] (default {!Engine.default_budget}) configure every engine's
    escalation behaviour. *)
val create :
  ?index:Bbx_detect.Detect.index_backend ->
  ?tier:Bbx_rules.Classify.protocol_class ->
  ?budget:Engine.budget ->
  mode:Bbx_dpienc.Dpienc.mode -> rules:Bbx_rules.Rule.t list -> unit -> t

(** [register ?direction t ~conn_id ~salt0 ~enc_chunk] — raises
    [Invalid_argument] on duplicate ids.  [enc_chunk] is consulted on the
    calling (owning) domain.  [direction] is the record-layer direction of
    the inspected stream (see {!Engine.create}). *)
val register :
  ?direction:string ->
  t -> conn_id:conn_id -> salt0:int -> enc_chunk:(string -> string) -> unit

(** [record_stream t ~conn_id record] retains one sealed SSL record for
    probable-cause escalation ({!Engine.record_stream}).  Ignored on
    blocked connections; raises [Invalid_argument] on unknown ids. *)
val record_stream : t -> conn_id:conn_id -> string -> unit

(** [process t ~conn_id tokens] inspects a batch and returns the new rule
    verdicts.  Raises [Invalid_argument] on blocked or unknown ids. *)
val process : t -> conn_id:conn_id -> Bbx_dpienc.Dpienc.enc_token list -> Engine.verdict list

(** [process_wire t ~conn_id wire] — same, straight off the wire encoding. *)
val process_wire : t -> conn_id:conn_id -> string -> Engine.verdict list

val is_blocked : t -> conn_id:conn_id -> bool

(** [unregister t ~conn_id] — connection teardown (idempotent). *)
val unregister : t -> conn_id:conn_id -> unit

(** [engine t ~conn_id] — direct access for probable-cause key recovery. *)
val engine : t -> conn_id:conn_id -> Engine.t

(** [reset_conn t ~conn_id ~salt0] forwards a sender salt reset to the
    connection's engine. *)
val reset_conn : t -> conn_id:conn_id -> salt0:int -> unit

(** [update_rules t ~conn_id ~remove_sids ~add ~rules ~enc_chunk] applies
    a rule update to one connection's engine: rules with a sid in
    [remove_sids] are retired ({!Engine.remove_rules} — the connection's
    reported-rule set is remapped across the index shift), [add] rules
    are appended ({!Engine.add_rules}, consulting [enc_chunk] for fresh
    chunks), and [rules] — the full post-update ruleset — becomes the
    shard's ruleset for future registrations.  Follow with
    {!reset_conn}, as after any rule update. *)
val update_rules :
  t ->
  conn_id:conn_id ->
  remove_sids:int list ->
  add:Bbx_rules.Rule.t list ->
  rules:Bbx_rules.Rule.t list ->
  enc_chunk:(string -> string) ->
  unit

val stats : t -> stats

(** [merge_stats a b] — field-wise sum, for aggregating shards. *)
val merge_stats : stats -> stats -> stats

val empty_stats : stats

val flow_stats : t -> conn_id:conn_id -> flow_stats

val fold_flows : t -> init:'a -> f:('a -> conn_id -> flow_stats -> 'a) -> 'a
