(** Bro-style analysis scripts for the probable-cause stage.

    Protocol III's point (paper §5) is that once a suspicious keyword
    matches and the stream is decrypted, the middlebox can run analyses
    that exact matching cannot express — Snort's pcre, but also Bro-style
    scripts.  This module ships a small library of such scripts operating
    on decrypted HTTP payloads, plus the combinator to run them.

    Scripts never see traffic before probable cause fires; wiring them to
    {!Engine.verdicts}' decrypted stream preserves the privacy model. *)

type finding = {
  script : string;     (** script name *)
  detail : string;     (** human-readable reason *)
}

type t

val name : t -> string

(** [run script payload] analyses one decrypted payload. *)
val run : t -> string -> finding option

(** [run_all scripts payload] collects every finding. *)
val run_all : t list -> string -> finding list

(** {1 Built-in scripts} *)

(** Flags POST/PUT bodies larger than [threshold] bytes (bulk exfiltration
    heuristic; default 64 KiB). *)
val large_upload : ?threshold:int -> unit -> t

(** Flags request bodies whose Shannon entropy exceeds [threshold]
    bits/byte (default 7.2): compressed or encrypted blobs smuggled in
    text endpoints. *)
val high_entropy_body : ?threshold:float -> unit -> t

(** Flags SQL-injection-shaped query strings (quotes + comment/UNION
    grammar beyond a plain keyword match). *)
val sql_injection : unit -> t

(** Flags NOP sleds: runs of at least [min_run] consecutive 0x90 bytes
    (default 16) anywhere in the payload. *)
val nop_sled : ?min_run:int -> unit -> t

(** All of the above with default thresholds. *)
val defaults : t list
