type finding = {
  script : string;
  detail : string;
}

type t = {
  name : string;
  check : string -> string option; (* payload -> detail *)
}

let name t = t.name

let run t payload =
  match t.check payload with
  | Some detail -> Some { script = t.name; detail }
  | None -> None

let run_all scripts payload = List.filter_map (fun s -> run s payload) scripts

(* Parse the payload as an HTTP request when possible; scripts degrade to
   raw-bytes analysis otherwise. *)
let try_request payload =
  match Bbx_net.Http.parse_request payload with
  | r -> Some r
  | exception Bbx_net.Http.Malformed _ -> None

let large_upload ?(threshold = 64 * 1024) () =
  { name = "large-upload";
    check =
      (fun payload ->
         match try_request payload with
         | Some r when (r.Bbx_net.Http.meth = "POST" || r.Bbx_net.Http.meth = "PUT")
                    && String.length r.Bbx_net.Http.body > threshold ->
           Some (Printf.sprintf "%s body of %d bytes exceeds %d"
                   r.Bbx_net.Http.meth (String.length r.Bbx_net.Http.body) threshold)
         | _ -> None) }

let shannon_entropy s =
  if s = "" then 0.0
  else begin
    let counts = Array.make 256 0 in
    String.iter (fun c -> counts.(Char.code c) <- counts.(Char.code c) + 1) s;
    let n = float_of_int (String.length s) in
    Array.fold_left
      (fun acc c ->
         if c = 0 then acc
         else begin
           let p = float_of_int c /. n in
           acc -. (p *. (log p /. log 2.0))
         end)
      0.0 counts
  end

let high_entropy_body ?(threshold = 7.2) () =
  { name = "high-entropy-body";
    check =
      (fun payload ->
         let body =
           match try_request payload with
           | Some r -> r.Bbx_net.Http.body
           | None -> payload
         in
         if String.length body >= 256 then begin
           let h = shannon_entropy body in
           if h > threshold then
             Some (Printf.sprintf "body entropy %.2f bits/byte over %d bytes" h
                     (String.length body))
           else None
         end
         else None) }

let contains_ci hay needle =
  let hay = String.lowercase_ascii hay and needle = String.lowercase_ascii needle in
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let sql_injection () =
  { name = "sql-injection";
    check =
      (fun payload ->
         let target =
           match try_request payload with
           | Some r -> r.Bbx_net.Http.path ^ "?" ^ r.Bbx_net.Http.body
           | None -> payload
         in
         let has_quote =
           String.contains target '\'' || contains_ci target "%27"
         in
         let has_grammar =
           List.exists (contains_ci target) [ "union select"; "union+select"; "or 1=1"; "or+1=1"; "--"; "/*" ]
         in
         if has_quote && has_grammar then Some "quote plus SQL grammar in query"
         else None) }

let nop_sled ?(min_run = 16) () =
  { name = "nop-sled";
    check =
      (fun payload ->
         let best = ref 0 and cur = ref 0 in
         String.iter
           (fun c ->
              if c = '\x90' then begin
                incr cur;
                if !cur > !best then best := !cur
              end
              else cur := 0)
           payload;
         if !best >= min_run then Some (Printf.sprintf "0x90 run of %d bytes" !best)
         else None) }

let defaults =
  [ large_upload (); high_entropy_body (); sql_injection (); nop_sled () ]
