open Bbx_bignum
open Bbx_crypto
open Bbx_ot

type key = { secret : string }

let key_of_secret s = { secret = Kdf.derive ~secret:s ~label:"fe-key" 32 }

type ciphertext = { c1 : Nat.t; c2 : Nat.t }

(* Token exponent: H(k, t) as a 255-bit integer. *)
let token_exponent key t =
  let h = Sha256.digest (key.secret ^ "\x00" ^ t) in
  Nat.rem (Nat.of_bytes_be h) (Nat.sub Group.p Nat.one)

let encrypt key drbg t =
  if String.length t <> 8 then invalid_arg "Fe.encrypt: token must be 8 bytes";
  let r = Group.random_exponent drbg in
  let c1 = Group.exp Group.g r in
  let c2 = Group.exp c1 (token_exponent key t) in
  { c1; c2 }

type rule_key = { exponent : Nat.t }

let rule_key key r = { exponent = token_exponent key r }

let test rk { c1; c2 } = Nat.equal (Group.exp c1 rk.exponent) c2

let detect rule_keys c =
  let n = Array.length rule_keys in
  let rec go i = if i >= n then None else if test rule_keys.(i) c then Some i else go (i + 1) in
  go 0
