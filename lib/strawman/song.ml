open Bbx_crypto

type key = {
  pre : Aes.key;     (* k'' : deterministic pre-encryption *)
  derive : string;   (* k'  : keys the per-word key derivation f *)
  stream : Drbg.t;   (* seeds the S_i stream *)
}

let key_of_secret s =
  { pre = Aes.expand_key (Kdf.derive ~secret:s ~label:"song-pre" 16);
    derive = Kdf.derive ~secret:s ~label:"song-derive" 16;
    stream = Drbg.create (Kdf.derive ~secret:s ~label:"song-stream" 32) }

let half = 8

let pre_encrypt key t =
  if String.length t <> Bbx_tokenizer.Tokenizer.token_len then
    invalid_arg "Song: token must be 8 bytes";
  Aes.encrypt_block key.pre (t ^ String.make 8 '\000')

(* f_{k'}(L): the per-word key; F_k(S): the check function.  Both AES. *)
let word_key derive l = Aes.expand_key (Aes.encrypt_block (Aes.expand_key derive) (l ^ String.make 8 '\000'))

let check_tag wk s = String.sub (Aes.encrypt_block wk (s ^ String.make 8 '\000')) 0 half

type sender = { key : key }

let sender_create key = { key }

let encrypt sender t =
  let x = pre_encrypt sender.key t in
  let l = String.sub x 0 half in
  let wk = word_key sender.key.derive l in
  let s = Drbg.bytes sender.key.stream half in
  Util.xor (s ^ check_tag wk s) x

type trapdoor = { x : string; wk : Aes.key }

let trapdoor key r =
  let x = pre_encrypt key r in
  let l = String.sub x 0 half in
  { x; wk = word_key key.derive l }

let test td cipher =
  if String.length cipher <> 16 then invalid_arg "Song.test: cipher must be 16 bytes";
  let unmasked = Util.xor cipher td.x in
  let s = String.sub unmasked 0 half in
  let tag = String.sub unmasked half half in
  Util.ct_equal tag (check_tag td.wk s)

let detect trapdoors cipher =
  let n = Array.length trapdoors in
  let rec go i = if i >= n then None else if test trapdoors.(i) cipher then Some i else go (i + 1) in
  go 0
