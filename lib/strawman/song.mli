(** The searchable-encryption strawman: Song, Wagner and Perrig's
    sequential-scan scheme (paper §7.2.1), specialised to fixed-size
    tokens, with the hash instantiated by AES as the paper's authors did
    when tuning this strawman.

    A token [t] at stream position [i] encrypts to

    {v C_i = (S_i || F_{k_i}(S_i)) XOR X_t v}

    where [X_t = E_{k''}(t)] is the deterministic pre-encryption,
    [S_i] a pseudorandom stream, and [k_i = f_{k'}(L_t)] depends on the
    left half of [X_t].  To search for keyword [r] the middlebox gets
    [X_r] and [k_r] and must test {e every} ciphertext against {e every}
    keyword — detection linear in the ruleset, which is exactly the
    performance gap Table 2 quantifies against BlindBox Detect's tree. *)

type key

val key_of_secret : string -> key

(** Sender-side encryptor (tracks the stream position). *)
type sender

val sender_create : key -> sender

(** [encrypt sender t] — 16-byte ciphertext for an 8-byte token. *)
val encrypt : sender -> string -> string

(** Per-keyword search trapdoor. *)
type trapdoor

val trapdoor : key -> string -> trapdoor

(** [test trapdoor cipher] — does this ciphertext hide the trapdoor's
    keyword? *)
val test : trapdoor -> string -> bool

(** [detect trapdoors cipher] scans all trapdoors (the linear scan). *)
val detect : trapdoor array -> string -> int option
