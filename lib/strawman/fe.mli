(** The functional-encryption strawman (paper §7.2.1).

    The paper benchmarks a Katz-Sahai-Waters predicate-encryption scheme
    whose pairing operations make it 5-6 orders of magnitude slower than
    DPIEnc.  Pairing-friendly curves are out of scope for this
    reproduction (DESIGN.md §2), so this module implements an
    ElGamal-style predicate check over the same Z_p^* group the OTs use,
    with the same cost {e shape}: a handful of modular exponentiations per
    token encryption and one modular exponentiation per (token, rule)
    test, detection linear in the ruleset.  Since a 255-bit modexp costs
    ~10^4-10^5 DPIEnc operations, the measured gap lands in the paper's
    "orders of magnitude" band.

    (The check is an equality predicate — enough for Protocols I/II; like
    the Katz et al. scheme, it cannot express Protocol III.) *)

type key

val key_of_secret : string -> key

type ciphertext

(** [encrypt key drbg t] — randomised encryption of an 8-byte token:
    [(g^r, (g^r)^{H(k,t)})]. *)
val encrypt : key -> Bbx_crypto.Drbg.t -> string -> ciphertext

(** Per-rule predicate key. *)
type rule_key

val rule_key : key -> string -> rule_key

(** [test rk c] — one modular exponentiation. *)
val test : rule_key -> ciphertext -> bool

(** [detect rule_keys c] — the linear scan. *)
val detect : rule_key array -> ciphertext -> int option
