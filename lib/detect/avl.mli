(** Self-balancing (AVL) search tree with [int] keys.

    BlindBox Detect keeps one node per rule keyword, keyed by the keyword's
    current DPIEnc ciphertext, so that each traffic token costs one
    O(log #rules) lookup — the paper's headline complexity argument against
    the linear-scan searchable-encryption strawman (§3.2). *)

type 'a t

val empty : 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int
val height : 'a t -> int

(** [insert k v t] replaces any existing binding of [k]. *)
val insert : int -> 'a -> 'a t -> 'a t

val find_opt : int -> 'a t -> 'a option

(** [find_probe k ~steps t] is [find_opt k t], additionally adding the
    number of nodes visited (key comparisons) to [steps].  The cell is
    caller-preallocated so the instrumented lookup allocates nothing
    beyond [find_opt]'s own result. *)
val find_probe : int -> steps:int ref -> 'a t -> 'a option

val mem : int -> 'a t -> bool

(** [remove k t] is [t] without [k] (unchanged if unbound). *)
val remove : int -> 'a t -> 'a t

(** [update k f t]: [f None] on absent, [f (Some v)] on present; [f]
    returning [None] deletes. *)
val update : int -> ('a option -> 'a option) -> 'a t -> 'a t

(** [replace ~old_key k v t] is [insert k v (remove old_key t)], optimised
    to a single traversal (an in-place key rewrite, no rebalancing) when
    [k] lies in the same ordering gap as [old_key]'s node.  Detect's
    match-path re-keying uses this instead of two rebalancing passes. *)
val replace : old_key:int -> int -> 'a -> 'a t -> 'a t

val of_list : (int * 'a) list -> 'a t
val to_sorted_list : 'a t -> (int * 'a) list

(** [check_invariants t] verifies BST ordering and AVL balance; used by the
    property tests. *)
val check_invariants : 'a t -> bool
