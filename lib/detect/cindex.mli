(** Flat open-addressing cipher index: the cache-resident fast path of
    BlindBox Detect.

    The AVL tree ({!Avl}) gives the paper's O(log n) per-token bound, but
    every comparison is a pointer chase and every match-path re-key copies
    an O(log n) root path.  This index stores the same
    [cipher -> keyword_id] map in two preallocated [int] arrays (cipher
    key and keyword id, parallel slots) with linear probing, so a
    non-matching token costs one multiplicative hash plus a short scan
    over contiguous memory, and a match re-keys in place — delete the old
    cipher, insert the next-salt cipher — with zero allocation.

    Deletion is backward-shift (Knuth 6.4): entries after the hole slide
    back to their preferred position, so no tombstones accumulate and
    probe sequences stay short under Detect's constant delete/insert
    churn.

    Semantics match the AVL exactly where Detect cares: {!insert} on a
    present key replaces its binding (last writer wins — the
    duplicate-cipher behaviour {!Detect.create} documents), {!remove} of
    an absent key is a no-op, and lookups are exact [int] equality.
    Keyword ids must be [>= 0] ([-1] marks an empty slot).

    Not thread-safe; owned by one domain, like the {!Detect.t} holding
    it. *)

type t

(** [create ~capacity ()] — [capacity] is the expected number of live
    entries; the table preallocates at least twice that (next power of
    two, min 16) and grows itself if the load factor would exceed 1/2. *)
val create : ?capacity:int -> unit -> t

(** Number of live entries. *)
val size : t -> int

(** Current slot count (power of two, >= 2 * {!size}). *)
val capacity : t -> int

(** [find t key] is the id bound to [key], or [-1] — the allocation-free
    hot-path lookup. *)
val find : t -> int -> int

(** [find_probe t key ~steps] is {!find}, additionally adding the number
    of slots inspected (the probe length) to [steps].  The cell is
    caller-preallocated so the instrumented lookup allocates nothing. *)
val find_probe : t -> int -> steps:int ref -> int

val mem : t -> int -> bool

(** [insert t key id] binds [key] to [id], replacing any existing binding
    of [key].  Raises [Invalid_argument] if [id < 0]. *)
val insert : t -> int -> int -> unit

(** [remove t key] — backward-shift deletion; no-op if [key] is unbound. *)
val remove : t -> int -> unit

(** [clear t] empties the table, keeping its arrays. *)
val clear : t -> unit

(** [iter t ~f] calls [f ~key ~id] for every live entry, in slot order. *)
val iter : t -> f:(key:int -> id:int -> unit) -> unit

(** [check_invariants t] verifies that every live entry is reachable by
    probing from its home slot (no entry stranded behind an empty slot)
    and that the stored count matches; used by the property tests. *)
val check_invariants : t -> bool
