type 'a t =
  | Leaf
  | Node of { l : 'a t; k : int; v : 'a; r : 'a t; h : int }

let empty = Leaf
let is_empty t = t = Leaf

let height = function Leaf -> 0 | Node { h; _ } -> h

let rec size = function Leaf -> 0 | Node { l; r; _ } -> 1 + size l + size r

let node l k v r =
  Node { l; k; v; r; h = 1 + max (height l) (height r) }

(* Rebalance assuming subtrees differ in height by at most 2. *)
let balance l k v r =
  let hl = height l and hr = height r in
  if hl > hr + 1 then
    match l with
    | Leaf -> assert false
    | Node { l = ll; k = lk; v = lv; r = lr; _ } ->
      if height ll >= height lr then node ll lk lv (node lr k v r)
      else begin
        match lr with
        | Leaf -> assert false
        | Node { l = lrl; k = lrk; v = lrv; r = lrr; _ } ->
          node (node ll lk lv lrl) lrk lrv (node lrr k v r)
      end
  else if hr > hl + 1 then
    match r with
    | Leaf -> assert false
    | Node { l = rl; k = rk; v = rv; r = rr; _ } ->
      if height rr >= height rl then node (node l k v rl) rk rv rr
      else begin
        match rl with
        | Leaf -> assert false
        | Node { l = rll; k = rlk; v = rlv; r = rlr; _ } ->
          node (node l k v rll) rlk rlv (node rlr rk rv rr)
      end
  else node l k v r

let rec insert key value = function
  | Leaf -> node Leaf key value Leaf
  | Node { l; k; v; r; _ } ->
    if key = k then node l key value r
    else if key < k then balance (insert key value l) k v r
    else balance l k v (insert key value r)

let rec find_opt key = function
  | Leaf -> None
  | Node { l; k; v; r; _ } ->
    if key = k then Some v else if key < k then find_opt key l else find_opt key r

(* [find_opt] that also counts nodes visited (= key comparisons) into the
   caller's preallocated cell — the instrumented lookup of the detection
   hot path. *)
let rec find_probe key ~steps = function
  | Leaf -> None
  | Node { l; k; v; r; _ } ->
    steps := !steps + 1;
    if key = k then Some v
    else if key < k then find_probe key ~steps l
    else find_probe key ~steps r

let mem key t = find_opt key t <> None

let rec min_binding = function
  | Leaf -> invalid_arg "Avl.min_binding: empty"
  | Node { l = Leaf; k; v; _ } -> (k, v)
  | Node { l; _ } -> min_binding l

let rec remove key = function
  | Leaf -> Leaf
  | Node { l; k; v; r; _ } ->
    if key < k then balance (remove key l) k v r
    else if key > k then balance l k v (remove key r)
    else begin
      match (l, r) with
      | Leaf, _ -> r
      | _, Leaf -> l
      | _ ->
        let sk, sv = min_binding r in
        balance l sk sv (remove sk r)
    end

let rec max_binding = function
  | Leaf -> invalid_arg "Avl.max_binding: empty"
  | Node { r = Leaf; k; v; _ } -> (k, v)
  | Node { r; _ } -> max_binding r

(* [replace ~old_key new_key v t] = [insert new_key v (remove old_key t)],
   but when [new_key] falls inside the same ordering gap as [old_key]'s
   node (adjacent in order: greater than everything left of it, smaller
   than everything right of it) the node's key is rewritten in one
   traversal with no rebalancing.  Detect re-keys a matched keyword to its
   next pseudorandom ciphertext on every hit, so the fast path is
   opportunistic and the fallback must stay correct. *)
exception Replace_fallback

let replace ~old_key new_key value t =
  let rec go lo hi = function
    | Leaf -> raise_notrace Replace_fallback (* old_key unbound *)
    | Node { l; k; v; r; h } ->
      if old_key = k then begin
        let above_left =
          match l with Leaf -> new_key > lo | _ -> new_key > fst (max_binding l)
        and below_right =
          match r with Leaf -> new_key < hi | _ -> new_key < fst (min_binding r)
        in
        if above_left && below_right then Node { l; k = new_key; v = value; r; h }
        else raise_notrace Replace_fallback
      end
      else if old_key < k then Node { l = go lo k l; k; v; r; h }
      else Node { l; k; v; r = go k hi r; h }
  in
  try go min_int max_int t
  with Replace_fallback -> insert new_key value (remove old_key t)

let update key f t =
  match f (find_opt key t) with
  | None -> remove key t
  | Some v -> insert key v t

let of_list l = List.fold_left (fun t (k, v) -> insert k v t) empty l

let to_sorted_list t =
  let rec go t acc =
    match t with
    | Leaf -> acc
    | Node { l; k; v; r; _ } -> go l ((k, v) :: go r acc)
  in
  go t []

let check_invariants t =
  let rec go lo hi = function
    | Leaf -> true
    | Node { l; k; v = _; r; h } ->
      (match lo with None -> true | Some b -> k > b)
      && (match hi with None -> true | Some b -> k < b)
      && h = 1 + max (height l) (height r)
      && abs (height l - height r) <= 1
      && go lo (Some k) l
      && go (Some k) hi r
  in
  go None None t
