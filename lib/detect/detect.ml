open Bbx_dpienc
module Obs = Bbx_obs.Obs

(* Lookup accounting (§3.2's per-token cost, measured).  Lookups are added
   in bulk per batch/stream, and the probe length of one lookup in
   [1 lsl sample_shift] is observed into the [bbx_detect_probe_len]
   histogram — for the AVL backend that is the comparison depth (the
   paper's O(log n)), for the hash backend the linear-probe scan length
   (expected O(1) at load factor <= 1/2).  An exact per-token count costs
   ~7% throughput (it fails the obs-overhead gate); the sampled estimator
   is statistically identical on any real stream and keeps the hot path at
   one branch + one increment.  Index shape is sampled as gauges once per
   [process_stream] call. *)
let obs_lookups = Obs.counter "bbx_detect_lookups_total"
let obs_probe_len =
  Obs.histogram "bbx_detect_probe_len"
    ~buckets:[| 1; 2; 3; 4; 6; 8; 12; 16; 24; 32 |]
let obs_matches = Obs.counter "bbx_detect_matches_total"
let obs_tree_height = Obs.gauge "bbx_detect_tree_height"
let obs_index_capacity = Obs.gauge "bbx_detect_index_capacity"
let obs_keywords = Obs.gauge "bbx_detect_keywords"
let sample_shift = 6

type keyword_id = int

type index_backend = Hash | Avl

type event = { kw_id : keyword_id; offset : int; salt : int }

type kw_state = {
  tkey : Dpienc.token_key;
  mutable count : int;
  mutable current_cipher : int;
}

(* The cipher -> keyword_id map, in one of two shapes: [Flat] is the flat
   open-addressing index (the default — contiguous memory, in-place
   re-keying), [Tree] the original AVL (kept as the differential oracle
   and for the §3.2 log-n ablation).  Both implement identical map
   semantics: insert replaces, remove of an absent key is a no-op. *)
type index =
  | Flat of Cindex.t
  | Tree of { mutable tree : keyword_id Avl.t }

(* [keywords] is a growable store: the first [kw_count] slots are live,
   the rest are capacity (filled with an arbitrary live element).
   [add_keyword] amortises to O(1) instead of the old O(n) Array.append
   per call. *)
(* [probe_tick]/[probe_steps] are the sampling state for the probe-length
   estimator.  They live on [t] (not at module level) so that indices
   owned by different domains — one per Shardpool shard — never share
   mutable detection-path state. *)
type t = {
  mode : Dpienc.mode;
  stride : int;
  mutable salt0 : int;
  mutable keywords : kw_state array;
  mutable kw_count : int;
  index : index;
  mutable probe_tick : int;
  probe_steps : int ref;
}

let backend t = match t.index with Flat _ -> Hash | Tree _ -> Avl

let current_salt t kw = t.salt0 + (t.stride * kw.count)

let iter_keywords t f =
  for id = 0 to t.kw_count - 1 do f id t.keywords.(id) done

let index_insert t cipher id =
  match t.index with
  | Flat c -> Cindex.insert c cipher id
  | Tree tr -> tr.tree <- Avl.insert cipher id tr.tree

let rebuild t =
  (match t.index with
   | Flat c -> Cindex.clear c
   | Tree tr -> tr.tree <- Avl.empty);
  iter_keywords t (fun id kw ->
      kw.current_cipher <- Dpienc.encrypt kw.tkey ~salt:(current_salt t kw);
      index_insert t kw.current_cipher id)

let create ?(index = Hash) ~mode ~salt0 encs =
  if mode = Dpienc.Probable && salt0 land 1 <> 0 then
    invalid_arg "Detect.create: salt0 must be even";
  let keywords =
    Array.map
      (fun enc -> { tkey = Dpienc.token_key_of_enc enc; count = 0; current_cipher = 0 })
      encs
  in
  let index =
    match index with
    | Hash -> Flat (Cindex.create ~capacity:(Array.length keywords) ())
    | Avl -> Tree { tree = Avl.empty }
  in
  let t =
    { mode; stride = Dpienc.salt_stride mode; salt0; keywords;
      kw_count = Array.length keywords; index;
      probe_tick = 0; probe_steps = ref 0 }
  in
  rebuild t;
  t

(* Plain lookup, unified to an id (>= 0) or -1: the hash path returns the
   id directly; the AVL path unwraps its option (the [Some] block is the
   tree path's only per-match allocation here). *)
let[@inline] lookup t cipher =
  match t.index with
  | Flat c -> Cindex.find c cipher
  | Tree tr ->
    (match Avl.find_opt cipher tr.tree with None -> -1 | Some id -> id)

let lookup_probe t cipher ~steps =
  match t.index with
  | Flat c -> Cindex.find_probe c cipher ~steps
  | Tree tr ->
    (match Avl.find_probe cipher ~steps tr.tree with None -> -1 | Some id -> id)

(* Streaming core: one index lookup per token; on a match the keyword is
   re-keyed to its next-salt ciphertext — in place for the hash index
   (remove + insert over contiguous slots, zero allocation), via
   [Avl.replace] (single traversal, path copy) for the tree. *)
let process_token t ~cipher ~offset =
  let found =
    if Obs.enabled () then begin
      let k = t.probe_tick + 1 in
      t.probe_tick <- k;
      if k land ((1 lsl sample_shift) - 1) = 0 then begin
        t.probe_steps := 0;
        let r = lookup_probe t cipher ~steps:t.probe_steps in
        Obs.observe obs_probe_len !(t.probe_steps);
        r
      end
      else lookup t cipher
    end
    else lookup t cipher
  in
  if found < 0 then None
  else begin
    Obs.incr obs_matches;
    let kw = t.keywords.(found) in
    let salt = current_salt t kw in
    kw.count <- kw.count + 1;
    let next = Dpienc.encrypt kw.tkey ~salt:(current_salt t kw) in
    (match t.index with
     | Flat c ->
       Cindex.remove c kw.current_cipher;
       Cindex.insert c next found
     | Tree tr ->
       tr.tree <- Avl.replace ~old_key:kw.current_cipher next found tr.tree);
    kw.current_cipher <- next;
    Some { kw_id = found; offset; salt }
  end

let process t (tok : Dpienc.enc_token) =
  Obs.incr obs_lookups;
  process_token t ~cipher:tok.Dpienc.cipher ~offset:tok.Dpienc.offset

(* One traversal: the filter_map visit also counts the tokens, so the
   lookups delta is added once without a second [List.length] pass. *)
let process_batch t toks =
  let n = ref 0 in
  let evs =
    List.filter_map
      (fun tok ->
         incr n;
         process_token t ~cipher:tok.Dpienc.cipher ~offset:tok.Dpienc.offset)
      toks
  in
  Obs.add obs_lookups !n;
  evs

(* Walk a wire-encoded token stream without materialising enc_token
   records; [f] fires once per match with the position of the matching
   record's embed inside [wire] (or -1).  Returns the token count. *)
let process_stream t wire ~f =
  let count = ref 0 in
  Dpienc.decode_iter wire ~f:(fun ~cipher ~offset ~embed_pos ->
      incr count;
      match process_token t ~cipher ~offset with
      | None -> ()
      | Some ev -> f ev ~embed_pos);
  (* bulk/per-delivery accounting, not per token (all O(1)) *)
  Obs.add obs_lookups !count;
  (match t.index with
   | Tree tr -> Obs.set_gauge obs_tree_height (Avl.height tr.tree)
   | Flat c -> Obs.set_gauge obs_index_capacity (Cindex.capacity c));
  Obs.set_gauge obs_keywords t.kw_count;
  !count

let recover_key t ~event ~embed =
  if t.mode <> Dpienc.Probable then
    invalid_arg "Detect.recover_key: not in probable-cause mode";
  if String.length embed <> 16 then invalid_arg "Detect.recover_key: embed must be 16 bytes";
  let kw = t.keywords.(event.kw_id) in
  let mask = Dpienc.encrypt_full kw.tkey ~salt:(event.salt + 1) in
  Bbx_crypto.Util.xor embed mask

let reset t ~salt0 =
  if t.mode = Dpienc.Probable && salt0 land 1 <> 0 then
    invalid_arg "Detect.reset: salt0 must be even";
  t.salt0 <- salt0;
  iter_keywords t (fun _ kw -> kw.count <- 0);
  rebuild t

let add_keyword t enc =
  let kw = { tkey = Dpienc.token_key_of_enc enc; count = 0; current_cipher = 0 } in
  if t.kw_count = Array.length t.keywords then begin
    let grown = Array.make (max 8 (2 * t.kw_count)) kw in
    Array.blit t.keywords 0 grown 0 t.kw_count;
    t.keywords <- grown
  end;
  let id = t.kw_count in
  t.keywords.(id) <- kw;
  t.kw_count <- id + 1;
  kw.current_cipher <- Dpienc.encrypt kw.tkey ~salt:(current_salt t kw);
  index_insert t kw.current_cipher id;
  id

let size t =
  match t.index with Flat c -> Cindex.size c | Tree tr -> Avl.size tr.tree

let tree_height t =
  match t.index with Flat _ -> 0 | Tree tr -> Avl.height tr.tree
