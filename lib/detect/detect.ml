open Bbx_dpienc

type keyword_id = int

type event = { kw_id : keyword_id; offset : int; salt : int }

type kw_state = {
  tkey : Dpienc.token_key;
  mutable count : int;
  mutable current_cipher : int;
}

type t = {
  mode : Dpienc.mode;
  stride : int;
  mutable salt0 : int;
  mutable keywords : kw_state array;
  mutable tree : keyword_id Avl.t;
}

let current_salt t kw = t.salt0 + (t.stride * kw.count)

let rebuild t =
  t.tree <- Avl.empty;
  Array.iteri
    (fun id kw ->
       kw.current_cipher <- Dpienc.encrypt kw.tkey ~salt:(current_salt t kw);
       t.tree <- Avl.insert kw.current_cipher id t.tree)
    t.keywords

let create ~mode ~salt0 encs =
  if mode = Dpienc.Probable && salt0 land 1 <> 0 then
    invalid_arg "Detect.create: salt0 must be even";
  let keywords =
    Array.map
      (fun enc -> { tkey = Dpienc.token_key_of_enc enc; count = 0; current_cipher = 0 })
      encs
  in
  let t =
    { mode; stride = Dpienc.salt_stride mode; salt0; keywords; tree = Avl.empty }
  in
  rebuild t;
  t

let process t (tok : Dpienc.enc_token) =
  match Avl.find_opt tok.Dpienc.cipher t.tree with
  | None -> None
  | Some kw_id ->
    let kw = t.keywords.(kw_id) in
    let salt = current_salt t kw in
    (* Advance the keyword to its next expected ciphertext. *)
    t.tree <- Avl.remove kw.current_cipher t.tree;
    kw.count <- kw.count + 1;
    kw.current_cipher <- Dpienc.encrypt kw.tkey ~salt:(current_salt t kw);
    t.tree <- Avl.insert kw.current_cipher kw_id t.tree;
    Some { kw_id; offset = tok.Dpienc.offset; salt }

let process_batch t toks =
  List.filter_map (fun tok -> process t tok) toks

let recover_key t ~event ~embed =
  if t.mode <> Dpienc.Probable then
    invalid_arg "Detect.recover_key: not in probable-cause mode";
  if String.length embed <> 16 then invalid_arg "Detect.recover_key: embed must be 16 bytes";
  let kw = t.keywords.(event.kw_id) in
  let mask = Dpienc.encrypt_full kw.tkey ~salt:(event.salt + 1) in
  Bbx_crypto.Util.xor embed mask

let reset t ~salt0 =
  if t.mode = Dpienc.Probable && salt0 land 1 <> 0 then
    invalid_arg "Detect.reset: salt0 must be even";
  t.salt0 <- salt0;
  Array.iter (fun kw -> kw.count <- 0) t.keywords;
  rebuild t

let add_keyword t enc =
  let kw = { tkey = Dpienc.token_key_of_enc enc; count = 0; current_cipher = 0 } in
  let id = Array.length t.keywords in
  t.keywords <- Array.append t.keywords [| kw |];
  kw.current_cipher <- Dpienc.encrypt kw.tkey ~salt:(current_salt t kw);
  t.tree <- Avl.insert kw.current_cipher id t.tree;
  id

let size t = Avl.size t.tree

let tree_height t = Avl.height t.tree
