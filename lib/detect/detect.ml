open Bbx_dpienc
module Obs = Bbx_obs.Obs

(* Tree-lookup accounting (§3.2's O(log n) claim, measured).  Lookups are
   added in bulk per batch/stream, and comparison depth is *sampled*: one
   lookup in [1 lsl sample_shift] goes through [Avl.find_probe] (counting
   nodes visited into a preallocated cell) while the rest take the plain
   [find_opt] path — average depth is [comparisons / probes].  An exact
   per-token count costs ~7% throughput (it fails the obs-overhead gate);
   the sampled estimator is statistically identical on any real stream and
   keeps the hot path at one branch + one increment.  Tree shape is
   sampled as gauges once per [process_stream] call. *)
let obs_lookups = Obs.counter "bbx_detect_lookups_total"
let obs_comparisons = Obs.counter "bbx_detect_comparisons_sampled_total"
let obs_probes = Obs.counter "bbx_detect_probes_sampled_total"
let obs_matches = Obs.counter "bbx_detect_matches_total"
let obs_tree_height = Obs.gauge "bbx_detect_tree_height"
let obs_keywords = Obs.gauge "bbx_detect_keywords"
let sample_shift = 6

type keyword_id = int

type event = { kw_id : keyword_id; offset : int; salt : int }

type kw_state = {
  tkey : Dpienc.token_key;
  mutable count : int;
  mutable current_cipher : int;
}

(* [keywords] is a growable store: the first [kw_count] slots are live,
   the rest are capacity (filled with an arbitrary live element).
   [add_keyword] amortises to O(1) instead of the old O(n) Array.append
   per call. *)
(* [probe_tick]/[probe_steps] are the sampling state for the comparison-
   depth estimator.  They live on [t] (not at module level) so that trees
   owned by different domains — one per Shardpool shard — never share
   mutable detection-path state. *)
type t = {
  mode : Dpienc.mode;
  stride : int;
  mutable salt0 : int;
  mutable keywords : kw_state array;
  mutable kw_count : int;
  mutable tree : keyword_id Avl.t;
  mutable probe_tick : int;
  probe_steps : int ref;
}

let current_salt t kw = t.salt0 + (t.stride * kw.count)

let iter_keywords t f =
  for id = 0 to t.kw_count - 1 do f id t.keywords.(id) done

let rebuild t =
  t.tree <- Avl.empty;
  iter_keywords t (fun id kw ->
      kw.current_cipher <- Dpienc.encrypt kw.tkey ~salt:(current_salt t kw);
      t.tree <- Avl.insert kw.current_cipher id t.tree)

let create ~mode ~salt0 encs =
  if mode = Dpienc.Probable && salt0 land 1 <> 0 then
    invalid_arg "Detect.create: salt0 must be even";
  let keywords =
    Array.map
      (fun enc -> { tkey = Dpienc.token_key_of_enc enc; count = 0; current_cipher = 0 })
      encs
  in
  let t =
    { mode; stride = Dpienc.salt_stride mode; salt0; keywords;
      kw_count = Array.length keywords; tree = Avl.empty;
      probe_tick = 0; probe_steps = ref 0 }
  in
  rebuild t;
  t

(* Streaming core: one tree lookup per token; on a match the keyword's
   node is re-keyed to its next-salt ciphertext in a single traversal
   (Avl.replace) instead of remove + insert. *)
let process_token t ~cipher ~offset =
  let found =
    if Obs.enabled () then begin
      let k = t.probe_tick + 1 in
      t.probe_tick <- k;
      if k land ((1 lsl sample_shift) - 1) = 0 then begin
        t.probe_steps := 0;
        let r = Avl.find_probe cipher ~steps:t.probe_steps t.tree in
        Obs.incr obs_probes;
        Obs.add obs_comparisons !(t.probe_steps);
        r
      end
      else Avl.find_opt cipher t.tree
    end
    else Avl.find_opt cipher t.tree
  in
  match found with
  | None -> None
  | Some kw_id ->
    Obs.incr obs_matches;
    let kw = t.keywords.(kw_id) in
    let salt = current_salt t kw in
    kw.count <- kw.count + 1;
    let next = Dpienc.encrypt kw.tkey ~salt:(current_salt t kw) in
    t.tree <- Avl.replace ~old_key:kw.current_cipher next kw_id t.tree;
    kw.current_cipher <- next;
    Some { kw_id; offset; salt }

let process t (tok : Dpienc.enc_token) =
  Obs.incr obs_lookups;
  process_token t ~cipher:tok.Dpienc.cipher ~offset:tok.Dpienc.offset

let process_batch t toks =
  List.filter_map
    (fun tok -> process_token t ~cipher:tok.Dpienc.cipher ~offset:tok.Dpienc.offset)
    toks
  |> fun evs ->
  Obs.add obs_lookups (List.length toks);
  evs

(* Walk a wire-encoded token stream without materialising enc_token
   records; [f] fires once per match with the position of the matching
   record's embed inside [wire] (or -1).  Returns the token count. *)
let process_stream t wire ~f =
  let count = ref 0 in
  Dpienc.decode_iter wire ~f:(fun ~cipher ~offset ~embed_pos ->
      incr count;
      match process_token t ~cipher ~offset with
      | None -> ()
      | Some ev -> f ev ~embed_pos);
  (* bulk/per-delivery accounting, not per token (all O(1)) *)
  Obs.add obs_lookups !count;
  Obs.set_gauge obs_tree_height (Avl.height t.tree);
  Obs.set_gauge obs_keywords t.kw_count;
  !count

let recover_key t ~event ~embed =
  if t.mode <> Dpienc.Probable then
    invalid_arg "Detect.recover_key: not in probable-cause mode";
  if String.length embed <> 16 then invalid_arg "Detect.recover_key: embed must be 16 bytes";
  let kw = t.keywords.(event.kw_id) in
  let mask = Dpienc.encrypt_full kw.tkey ~salt:(event.salt + 1) in
  Bbx_crypto.Util.xor embed mask

let reset t ~salt0 =
  if t.mode = Dpienc.Probable && salt0 land 1 <> 0 then
    invalid_arg "Detect.reset: salt0 must be even";
  t.salt0 <- salt0;
  iter_keywords t (fun _ kw -> kw.count <- 0);
  rebuild t

let add_keyword t enc =
  let kw = { tkey = Dpienc.token_key_of_enc enc; count = 0; current_cipher = 0 } in
  if t.kw_count = Array.length t.keywords then begin
    let grown = Array.make (max 8 (2 * t.kw_count)) kw in
    Array.blit t.keywords 0 grown 0 t.kw_count;
    t.keywords <- grown
  end;
  let id = t.kw_count in
  t.keywords.(id) <- kw;
  t.kw_count <- id + 1;
  kw.current_cipher <- Dpienc.encrypt kw.tkey ~salt:(current_salt t kw);
  t.tree <- Avl.insert kw.current_cipher id t.tree;
  id

let size t = Avl.size t.tree

let tree_height t = Avl.height t.tree
