open Bbx_dpienc
module Obs = Bbx_obs.Obs

(* Lookup accounting (§3.2's per-token cost, measured).  Lookups are added
   in bulk per batch/stream, and the probe length of one lookup in
   [1 lsl sample_shift] is observed into the [bbx_detect_probe_len]
   histogram — for the AVL backend that is the comparison depth (the
   paper's O(log n)), for the hash backend the linear-probe scan length
   (expected O(1) at load factor <= 1/2).  An exact per-token count costs
   ~7% throughput (it fails the obs-overhead gate); the sampled estimator
   is statistically identical on any real stream and keeps the hot path at
   one branch + one increment.  Index shape is sampled as gauges once per
   [process_stream] call. *)
let obs_lookups = Obs.counter "bbx_detect_lookups_total"
let obs_probe_len =
  Obs.histogram "bbx_detect_probe_len"
    ~buckets:[| 1; 2; 3; 4; 6; 8; 12; 16; 24; 32 |]
let obs_matches = Obs.counter "bbx_detect_matches_total"
let obs_tree_height = Obs.gauge "bbx_detect_tree_height"
let obs_index_capacity = Obs.gauge "bbx_detect_index_capacity"
let obs_keywords = Obs.gauge "bbx_detect_keywords"
let sample_shift = 6

type keyword_id = int

type index_backend = Hash | Avl

type event = { kw_id : keyword_id; offset : int; salt : int }

(* An immutable array of expanded per-keyword token keys.  Expanding the
   AES key schedule of every rule chunk is the dominant per-connection
   setup cost and footprint at fleet scale, and the schedules depend only
   on the encrypted chunk values — so one keyset per (tenant, rule
   generation) is shared read-only by every connection's detector.  The
   array is never written after [keyset] returns; cross-domain publication
   happens through the shard pool's mailbox locks. *)
type keyset = Dpienc.token_key array

let keyset encs = Array.map Dpienc.token_key_of_enc encs
let keyset_size = Array.length

(* The cipher -> keyword_id map, in one of two shapes: [Flat] is the flat
   open-addressing index (the default — contiguous memory, in-place
   re-keying), [Tree] the original AVL (kept as the differential oracle
   and for the §3.2 log-n ablation).  Both implement identical map
   semantics: insert replaces, remove of an absent key is a no-op. *)
type index =
  | Flat of Cindex.t
  | Tree of { mutable tree : keyword_id Avl.t }

(* Per-keyword state lives in three parallel growable arrays — the first
   [kw_count] slots are live, the rest capacity — instead of an array of
   records: [counts] is the flat salt-counter table, [ciphers] the current
   40-bit index key per keyword, [tkeys] the expanded AES schedules.
   [tkeys] may alias a shared {!keyset} ([keys_shared]); it is then never
   mutated in place — [add_keyword] copies before the first write. *)
(* [probe_tick]/[probe_steps] are the sampling state for the probe-length
   estimator.  They live on [t] (not at module level) so that indices
   owned by different domains — one per Shardpool shard — never share
   mutable detection-path state. *)
type t = {
  mode : Dpienc.mode;
  stride : int;
  mutable salt0 : int;
  mutable tkeys : Dpienc.token_key array;
  mutable keys_shared : bool;
  mutable counts : int array;
  mutable ciphers : int array;
  mutable kw_count : int;
  index : index;
  mutable probe_tick : int;
  probe_steps : int ref;
}

let backend t = match t.index with Flat _ -> Hash | Tree _ -> Avl

let[@inline] current_salt t id = t.salt0 + (t.stride * t.counts.(id))

let index_insert t cipher id =
  match t.index with
  | Flat c -> Cindex.insert c cipher id
  | Tree tr -> tr.tree <- Avl.insert cipher id tr.tree

let rebuild t =
  (match t.index with
   | Flat c -> Cindex.clear c
   | Tree tr -> tr.tree <- Avl.empty);
  for id = 0 to t.kw_count - 1 do
    t.ciphers.(id) <- Dpienc.encrypt t.tkeys.(id) ~salt:(current_salt t id);
    index_insert t t.ciphers.(id) id
  done

let create ?(index = Hash) ?keys ~mode ~salt0 encs =
  if mode = Dpienc.Probable && salt0 land 1 <> 0 then
    invalid_arg "Detect.create: salt0 must be even";
  let n = Array.length encs in
  let tkeys, keys_shared =
    match keys with
    | Some ks ->
      if Array.length ks <> n then
        invalid_arg "Detect.create: keyset size mismatch";
      (ks, true)
    | None -> (keyset encs, false)
  in
  let index =
    match index with
    | Hash -> Flat (Cindex.create ~capacity:n ())
    | Avl -> Tree { tree = Avl.empty }
  in
  let t =
    { mode; stride = Dpienc.salt_stride mode; salt0;
      tkeys; keys_shared;
      counts = Array.make n 0; ciphers = Array.make n 0; kw_count = n;
      index; probe_tick = 0; probe_steps = ref 0 }
  in
  rebuild t;
  t

(* Plain lookup, unified to an id (>= 0) or -1: the hash path returns the
   id directly; the AVL path unwraps its option (the [Some] block is the
   tree path's only per-match allocation here). *)
let[@inline] lookup t cipher =
  match t.index with
  | Flat c -> Cindex.find c cipher
  | Tree tr ->
    (match Avl.find_opt cipher tr.tree with None -> -1 | Some id -> id)

let lookup_probe t cipher ~steps =
  match t.index with
  | Flat c -> Cindex.find_probe c cipher ~steps
  | Tree tr ->
    (match Avl.find_probe cipher ~steps tr.tree with None -> -1 | Some id -> id)

(* Streaming core: one index lookup per token; on a match the keyword is
   re-keyed to its next-salt ciphertext — in place for the hash index
   (remove + insert over contiguous slots, zero allocation), via
   [Avl.replace] (single traversal, path copy) for the tree. *)
let process_token t ~cipher ~offset =
  let found =
    if Obs.enabled () then begin
      let k = t.probe_tick + 1 in
      t.probe_tick <- k;
      if k land ((1 lsl sample_shift) - 1) = 0 then begin
        t.probe_steps := 0;
        let r = lookup_probe t cipher ~steps:t.probe_steps in
        Obs.observe obs_probe_len !(t.probe_steps);
        r
      end
      else lookup t cipher
    end
    else lookup t cipher
  in
  if found < 0 then None
  else begin
    Obs.incr obs_matches;
    let salt = current_salt t found in
    t.counts.(found) <- t.counts.(found) + 1;
    let next = Dpienc.encrypt t.tkeys.(found) ~salt:(current_salt t found) in
    (match t.index with
     | Flat c ->
       Cindex.remove c t.ciphers.(found);
       Cindex.insert c next found
     | Tree tr ->
       tr.tree <- Avl.replace ~old_key:t.ciphers.(found) next found tr.tree);
    t.ciphers.(found) <- next;
    Some { kw_id = found; offset; salt }
  end

let process t (tok : Dpienc.enc_token) =
  Obs.incr obs_lookups;
  process_token t ~cipher:tok.Dpienc.cipher ~offset:tok.Dpienc.offset

(* One traversal: the filter_map visit also counts the tokens, so the
   lookups delta is added once without a second [List.length] pass. *)
let process_batch t toks =
  let n = ref 0 in
  let evs =
    List.filter_map
      (fun tok ->
         incr n;
         process_token t ~cipher:tok.Dpienc.cipher ~offset:tok.Dpienc.offset)
      toks
  in
  Obs.add obs_lookups !n;
  evs

(* Walk a wire-encoded token stream without materialising enc_token
   records; [f] fires once per match with the position of the matching
   record's embed inside [wire] (or -1).  Returns the token count. *)
let process_stream t wire ~f =
  let count = ref 0 in
  Dpienc.decode_iter wire ~f:(fun ~cipher ~offset ~embed_pos ->
      incr count;
      match process_token t ~cipher ~offset with
      | None -> ()
      | Some ev -> f ev ~embed_pos);
  (* bulk/per-delivery accounting, not per token (all O(1)) *)
  Obs.add obs_lookups !count;
  (match t.index with
   | Tree tr -> Obs.set_gauge obs_tree_height (Avl.height tr.tree)
   | Flat c -> Obs.set_gauge obs_index_capacity (Cindex.capacity c));
  Obs.set_gauge obs_keywords t.kw_count;
  !count

let recover_key t ~event ~embed =
  if t.mode <> Dpienc.Probable then
    invalid_arg "Detect.recover_key: not in probable-cause mode";
  if String.length embed <> 16 then invalid_arg "Detect.recover_key: embed must be 16 bytes";
  let mask = Dpienc.encrypt_full t.tkeys.(event.kw_id) ~salt:(event.salt + 1) in
  Bbx_crypto.Util.xor embed mask

let reset t ~salt0 =
  if t.mode = Dpienc.Probable && salt0 land 1 <> 0 then
    invalid_arg "Detect.reset: salt0 must be even";
  t.salt0 <- salt0;
  Array.fill t.counts 0 t.kw_count 0;
  rebuild t

(* Snapshot/restore of the per-connection half of the detector state: the
   flat salt-counter table plus the base salt.  Keys, ciphers and the
   index are all derivable from (encs, salt0, counts) — [restore_counts]
   rebuilds them — so connection snapshots carry [kw_count] ints, not key
   schedules. *)
let salt_counts t = Array.sub t.counts 0 t.kw_count

let restore_counts t ~salt0 counts =
  if t.mode = Dpienc.Probable && salt0 land 1 <> 0 then
    invalid_arg "Detect.restore_counts: salt0 must be even";
  if Array.length counts <> t.kw_count then
    invalid_arg "Detect.restore_counts: count table size mismatch";
  Array.iter (fun c -> if c < 0 then
                 invalid_arg "Detect.restore_counts: negative count") counts;
  t.salt0 <- salt0;
  Array.blit counts 0 t.counts 0 t.kw_count;
  rebuild t

let add_keyword t enc =
  let tkey = Dpienc.token_key_of_enc enc in
  if t.kw_count = Array.length t.tkeys || t.keys_shared then begin
    (* grow (and, when [tkeys] aliases a shared keyset, unshare: the
       shared array must never be written) *)
    let cap = max 8 (max (2 * t.kw_count) (t.kw_count + 1)) in
    let tkeys = Array.make cap tkey in
    Array.blit t.tkeys 0 tkeys 0 t.kw_count;
    let counts = Array.make cap 0 in
    Array.blit t.counts 0 counts 0 t.kw_count;
    let ciphers = Array.make cap 0 in
    Array.blit t.ciphers 0 ciphers 0 t.kw_count;
    t.tkeys <- tkeys; t.counts <- counts; t.ciphers <- ciphers;
    t.keys_shared <- false
  end;
  let id = t.kw_count in
  t.tkeys.(id) <- tkey;
  t.counts.(id) <- 0;
  t.kw_count <- id + 1;
  t.ciphers.(id) <- Dpienc.encrypt tkey ~salt:(current_salt t id);
  index_insert t t.ciphers.(id) id;
  id

let size t =
  match t.index with Flat c -> Cindex.size c | Tree tr -> Avl.size tr.tree

let tree_height t =
  match t.index with Flat _ -> 0 | Tree tr -> Avl.height tr.tree

(* Approximate resident bytes of the per-connection half of the detector:
   the counter/cipher arrays and the index.  Shared keysets are charged to
   their owner (the fleet / rule generation), not to each connection;
   private key schedules are charged here (~1.4 KB each: a 176-slot int
   array plus headers). *)
let word = Sys.word_size / 8

let footprint_bytes t =
  let cap = Array.length t.counts in
  let arrays = 2 * (cap + 1) * word in
  let index =
    match t.index with
    | Flat c -> 2 * (Cindex.capacity c + 1) * word
    | Tree tr -> Avl.size tr.tree * 6 * word
  in
  let keys =
    if t.keys_shared then 0
    else t.kw_count * ((176 + 1) * word + 3 * word)
  in
  arrays + index + keys
