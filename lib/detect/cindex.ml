(* Two parallel int arrays, linear probing, backward-shift deletion.
   [ids.(i) = -1] marks an empty slot; [keys.(i)] is meaningful only when
   its slot is live.  Capacity is a power of two and the load factor is
   kept <= 1/2, so expected probe lengths stay O(1) even though DPIEnc
   ciphers churn (every match deletes one key and inserts another).

   The hot-path loops are top-level tail recursions over immediate ints —
   no refs, no closures — so [find]/[insert]/[remove] allocate nothing. *)

type t = {
  mutable keys : int array;
  mutable ids : int array;
  mutable mask : int;    (* capacity - 1 *)
  mutable shift : int;   (* 62 - log2 capacity: Fibonacci-hash top bits *)
  mutable count : int;
}

let min_capacity = 16

(* Fibonacci hashing (multiplier = 2^63 / golden ratio, truncated to
   OCaml's 63-bit int): ciphers are AES outputs (uniform), but the tests —
   and any future non-cipher key — may not be; one multiply spreads any
   key over the top bits, which the shift then maps onto [0, capacity). *)
let[@inline] slot t key = ((key * 0x4F1BBCDCBFA53E0B) land max_int) lsr t.shift

let log2 c =
  let rec go b n = if n <= 1 then b else go (b + 1) (n lsr 1) in
  go 0 c

let alloc t cap =
  t.keys <- Array.make cap 0;
  t.ids <- Array.make cap (-1);
  t.mask <- cap - 1;
  t.shift <- 62 - log2 cap;
  t.count <- 0

let create ?(capacity = 0) () =
  let rec pow2 c n = if c >= n then c else pow2 (c * 2) n in
  let cap = pow2 min_capacity (2 * capacity) in
  let t = { keys = [||]; ids = [||]; mask = 0; shift = 0; count = 0 } in
  alloc t cap;
  t

let size t = t.count
let capacity t = Array.length t.ids

let rec find_from keys ids mask key i =
  let id = Array.unsafe_get ids i in
  if id < 0 then -1
  else if Array.unsafe_get keys i = key then id
  else find_from keys ids mask key ((i + 1) land mask)

let find t key = find_from t.keys t.ids t.mask key (slot t key)

let rec find_probe_from keys ids mask key i ~steps =
  steps := !steps + 1;
  let id = Array.unsafe_get ids i in
  if id < 0 then -1
  else if Array.unsafe_get keys i = key then id
  else find_probe_from keys ids mask key ((i + 1) land mask) ~steps

let find_probe t key ~steps =
  find_probe_from t.keys t.ids t.mask key (slot t key) ~steps

let mem t key = find t key >= 0

let rec insert_from t key id i =
  let cur = Array.unsafe_get t.ids i in
  if cur < 0 then begin
    Array.unsafe_set t.keys i key;
    Array.unsafe_set t.ids i id;
    t.count <- t.count + 1
  end
  else if Array.unsafe_get t.keys i = key then Array.unsafe_set t.ids i id
  else insert_from t key id ((i + 1) land t.mask)

let grow t =
  let old_keys = t.keys and old_ids = t.ids in
  alloc t (2 * Array.length old_ids);
  Array.iteri
    (fun i id -> if id >= 0 then insert_from t old_keys.(i) id (slot t old_keys.(i)))
    old_ids

let insert t key id =
  if id < 0 then invalid_arg "Cindex.insert: id must be >= 0";
  if 2 * (t.count + 1) > Array.length t.ids then grow t;
  insert_from t key id (slot t key)

let rec slot_of_key keys ids mask key i =
  if Array.unsafe_get ids i < 0 then -1
  else if Array.unsafe_get keys i = key then i
  else slot_of_key keys ids mask key ((i + 1) land mask)

(* Backward-shift deletion: walk forward from the hole; any entry whose
   home slot does not lie (cyclically) strictly after the hole can slide
   back into it, re-opening the hole at its old position.  Stops at the
   first empty slot, leaving no tombstone behind. *)
let rec backshift t keys ids mask hole j =
  let j = (j + 1) land mask in
  if Array.unsafe_get ids j < 0 then Array.unsafe_set ids hole (-1)
  else begin
    let home = slot t (Array.unsafe_get keys j) in
    if (j - home) land mask >= (j - hole) land mask then begin
      Array.unsafe_set keys hole (Array.unsafe_get keys j);
      Array.unsafe_set ids hole (Array.unsafe_get ids j);
      backshift t keys ids mask j j
    end
    else backshift t keys ids mask hole j
  end

let remove t key =
  let i = slot_of_key t.keys t.ids t.mask key (slot t key) in
  if i >= 0 then begin
    t.count <- t.count - 1;
    backshift t t.keys t.ids t.mask i i
  end

let clear t =
  Array.fill t.ids 0 (Array.length t.ids) (-1);
  t.count <- 0

let iter t ~f =
  Array.iteri (fun i id -> if id >= 0 then f ~key:t.keys.(i) ~id) t.ids

let check_invariants t =
  let live = ref 0 in
  let ok = ref true in
  Array.iteri
    (fun i id ->
       if id >= 0 then begin
         incr live;
         (* reachable: probing from the home slot finds this exact key
            before any empty slot *)
         if find t t.keys.(i) < 0 then ok := false
       end)
    t.ids;
  !ok && !live = t.count && 2 * t.count <= Array.length t.ids
