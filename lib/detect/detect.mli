(** The BlindBox Detect engine (paper §3.2, extended for Protocols II/III).

    The middlebox holds, for each distinct rule-keyword token, the value
    [AES_k(token)] obtained through obfuscated rule encryption (never the
    key [k] itself).  It keeps a per-keyword occurrence counter and an AVL
    tree mapping each keyword's {e current} ciphertext
    [Enc_k(salt0 + stride * ct, token)] to the keyword.  Processing a
    traffic token is one tree lookup; on a match the keyword's node is
    re-encrypted under the next salt and swapped in the tree, keeping
    sender and middlebox counters in lock-step. *)

type keyword_id = int

(** A keyword match observed in the encrypted stream. *)
type event = {
  kw_id : keyword_id;
  offset : int;   (** stream offset of the matching token *)
  salt : int;     (** salt the match was encrypted under *)
}

type t

(** [create ~mode ~salt0 keywords] — [keywords] are the encrypted rule
    tokens [AES_k(token)] (16 bytes each); keyword ids are their indices.
    Duplicate encrypted values are allowed but only the last one's id is
    reported (callers dedup by token value). *)
val create : mode:Bbx_dpienc.Dpienc.mode -> salt0:int -> string array -> t

(** [process t tok] looks the token up and returns the match, if any.
    Matching updates the keyword's counter and tree node. *)
val process : t -> Bbx_dpienc.Dpienc.enc_token -> event option

(** [process_batch t toks] processes in order and returns all events. *)
val process_batch : t -> Bbx_dpienc.Dpienc.enc_token list -> event list

(** [process_token t ~cipher ~offset] — {!process} without the enc_token
    record: the streaming hot path. *)
val process_token : t -> cipher:int -> offset:int -> event option

(** [process_stream t wire ~f] decodes a wire-encoded token stream
    ({!Bbx_dpienc.Dpienc.decode_iter}) and processes each record in
    order, calling [f event ~embed_pos] on every match, where [embed_pos]
    locates the matching record's 16-byte embed inside [wire] ([-1] when
    the record has none).  Returns the number of tokens processed. *)
val process_stream :
  t -> string -> f:(event -> embed_pos:int -> unit) -> int

(** [recover_key t ~event ~embed] implements probable-cause decryption
    (§5): given the matching event and the paired ciphertext [c2], returns
    the 16-byte [k_ssl].  Raises [Invalid_argument] outside [Probable]
    mode. *)
val recover_key : t -> event:event -> embed:string -> string

(** [add_keyword t enc] registers one more encrypted rule token on a live
    connection (rule updates, §2.3's RG->MB distribution happening
    mid-connection) and returns its id.  The new keyword starts at counter
    zero under the current [salt0]. *)
val add_keyword : t -> string -> keyword_id

(** [reset t ~salt0] handles the sender's periodic counter reset: clears
    all counters and rebuilds the tree under the new initial salt. *)
val reset : t -> salt0:int -> unit

(** Number of distinct tree entries (= number of keywords). *)
val size : t -> int

(** Height of the search tree (for the log-vs-linear ablation bench). *)
val tree_height : t -> int
