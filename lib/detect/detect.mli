(** The BlindBox Detect engine (paper §3.2, extended for Protocols II/III).

    The middlebox holds, for each distinct rule-keyword token, the value
    [AES_k(token)] obtained through obfuscated rule encryption (never the
    key [k] itself).  It keeps a per-keyword occurrence counter and an
    index mapping each keyword's {e current} ciphertext
    [Enc_k(salt0 + stride * ct, token)] to the keyword.  Processing a
    traffic token is one index lookup; on a match the keyword is
    re-encrypted under the next salt and re-keyed in the index, keeping
    sender and middlebox counters in lock-step.

    Two index backends implement the same map semantics: {!Hash} (the
    default) is a flat open-addressing table over the 40-bit ciphertexts
    ({!Cindex}) — one multiplicative hash plus a short contiguous scan per
    token, in-place re-keying with zero allocation; {!Avl} is the original
    balanced tree, kept as the reference oracle for differential testing
    and for measuring the paper's O(log n) bound.  Both produce
    event-for-event identical output (verified by [test_detect_index]). *)

type keyword_id = int

(** Which cipher-to-keyword index {!create} builds.  [Hash] is the flat
    open-addressing index (default, fast path); [Avl] the balanced-tree
    reference. *)
type index_backend = Hash | Avl

(** A keyword match observed in the encrypted stream. *)
type event = {
  kw_id : keyword_id;
  offset : int;   (** stream offset of the matching token *)
  salt : int;     (** salt the match was encrypted under *)
}

type t

(** An immutable array of expanded per-keyword AES key schedules.  Key
    expansion is the dominant per-connection setup cost and footprint at
    fleet scale, and the schedules depend only on the encrypted chunk
    values — build one keyset per (tenant, rule generation) with
    {!keyset} and pass it to every connection's {!create} via [?keys].
    Never mutated after construction; safe to share across domains when
    published through a synchronised channel (the shard pool's mailboxes
    qualify). *)
type keyset

(** [keyset encs] expands the key schedule of each encrypted rule token
    once. *)
val keyset : string array -> keyset

val keyset_size : keyset -> int

(** [create ?index ?keys ~mode ~salt0 keywords] — [keywords] are the
    encrypted rule tokens [AES_k(token)] (16 bytes each); keyword ids are
    their indices.  Duplicate encrypted values are allowed but only the
    last one's id is reported (callers dedup by token value); both
    backends implement this identically.  [index] defaults to {!Hash}.
    [keys], when given, must be [keyset keywords] (checked by length
    only); the detector then borrows the shared schedules instead of
    re-expanding them. *)
val create :
  ?index:index_backend ->
  ?keys:keyset ->
  mode:Bbx_dpienc.Dpienc.mode -> salt0:int -> string array -> t

(** The backend [t] was created with. *)
val backend : t -> index_backend

(** [process t tok] looks the token up and returns the match, if any.
    Matching updates the keyword's counter and index entry. *)
val process : t -> Bbx_dpienc.Dpienc.enc_token -> event option

(** [process_batch t toks] processes in order and returns all events. *)
val process_batch : t -> Bbx_dpienc.Dpienc.enc_token list -> event list

(** [process_token t ~cipher ~offset] — {!process} without the enc_token
    record: the streaming hot path. *)
val process_token : t -> cipher:int -> offset:int -> event option

(** [process_stream t wire ~f] decodes a wire-encoded token stream
    ({!Bbx_dpienc.Dpienc.decode_iter}) and processes each record in
    order, calling [f event ~embed_pos] on every match, where [embed_pos]
    locates the matching record's 16-byte embed inside [wire] ([-1] when
    the record has none).  Returns the number of tokens processed. *)
val process_stream :
  t -> string -> f:(event -> embed_pos:int -> unit) -> int

(** [recover_key t ~event ~embed] implements probable-cause decryption
    (§5): given the matching event and the paired ciphertext [c2], returns
    the 16-byte [k_ssl].  Raises [Invalid_argument] outside [Probable]
    mode. *)
val recover_key : t -> event:event -> embed:string -> string

(** [add_keyword t enc] registers one more encrypted rule token on a live
    connection (rule updates, §2.3's RG->MB distribution happening
    mid-connection) and returns its id.  The new keyword starts at counter
    zero under the current [salt0]. *)
val add_keyword : t -> string -> keyword_id

(** [reset t ~salt0] handles the sender's periodic counter reset: clears
    all counters and rebuilds the index under the new initial salt. *)
val reset : t -> salt0:int -> unit

(** {1 Snapshot / restore}

    The per-connection half of a detector is exactly (salt0, one int per
    keyword): keys, current ciphertexts and the index are all derivable
    from it plus the encrypted rule tokens.  Connection migration
    serialises {!salt_counts} and rebuilds with {!restore_counts}. *)

(** The live salt-counter table, one entry per keyword id. *)
val salt_counts : t -> int array

(** [restore_counts t ~salt0 counts] overwrites the counter table and
    base salt, then rebuilds every current ciphertext and the index.
    Raises [Invalid_argument] on a size mismatch, a negative count, or an
    odd [salt0] in probable mode. *)
val restore_counts : t -> salt0:int -> int array -> unit

(** Approximate resident bytes of this detector's per-connection state
    (counter/cipher arrays + index; private key schedules are included,
    shared keysets are not — they are charged to their owner). *)
val footprint_bytes : t -> int

(** Number of distinct index entries (= number of keywords, minus any
    duplicate-cipher collisions). *)
val size : t -> int

(** Height of the search tree when the backend is {!Avl} (for the
    log-vs-linear ablation bench); [0] for {!Hash}. *)
val tree_height : t -> int
