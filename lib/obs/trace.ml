(* Per-domain ring-buffer flight recorder.  Event slots are five ints in
   a flat array owned by the recording domain (via Domain.DLS), so
   recording never allocates, never locks and never shares a cache line
   with another domain's ring.  The global registry of rings exists only
   for the dump side, which is cold. *)

let on =
  Atomic.make
    (match Sys.getenv_opt "BLINDBOX_TRACE" with
     | Some ("1" | "true" | "on") -> true
     | _ -> false)

let set_enabled b = Atomic.set on b
let enabled () = Atomic.get on

(* Relative timestamps keep full microsecond precision in a float-derived
   int (absolute epoch nanoseconds would exceed the 53-bit mantissa). *)
let epoch = Unix.gettimeofday ()
let now_ns () = int_of_float ((Unix.gettimeofday () -. epoch) *. 1e9)

(* ---- phases ---- *)

type phase = int

let phases_lock = Mutex.create ()
let phase_names : string array ref = ref [||]

let phase name =
  Mutex.lock phases_lock;
  let arr = !phase_names in
  let found = ref (-1) in
  Array.iteri (fun i n -> if !found < 0 && n = name then found := i) arr;
  let id =
    if !found >= 0 then !found
    else begin
      phase_names := Array.append arr [| name |];
      Array.length arr
    end
  in
  Mutex.unlock phases_lock;
  id

let phase_name i =
  let arr = !phase_names in
  if i >= 0 && i < Array.length arr then arr.(i) else Printf.sprintf "phase%d" i

(* ---- rings ---- *)

let fields = 5 (* phase, id, conn, start_ns, dur_ns *)

type ring = {
  dom : int;
  data : int array;             (* fields * cap *)
  cap : int;
  mutable next : int;           (* slot the next event lands in *)
  mutable count : int;          (* live events, <= cap *)
}

let default_capacity = Atomic.make 8192

let set_capacity n =
  if n < 1 then invalid_arg "Trace.set_capacity: capacity must be >= 1";
  Atomic.set default_capacity n

let rings_lock = Mutex.create ()
let rings : ring list ref = ref []

let dls_ring : ring Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let cap = Atomic.get default_capacity in
      let r =
        { dom = (Domain.self () :> int);
          data = Array.make (cap * fields) 0;
          cap;
          next = 0;
          count = 0 }
      in
      Mutex.lock rings_lock;
      rings := r :: !rings;
      Mutex.unlock rings_lock;
      r)

let record ph ~id ~conn ~start_ns ~dur_ns =
  if Atomic.get on then begin
    let r = Domain.DLS.get dls_ring in
    let base = r.next * fields in
    r.data.(base) <- ph;
    r.data.(base + 1) <- id;
    r.data.(base + 2) <- conn;
    r.data.(base + 3) <- start_ns;
    r.data.(base + 4) <- dur_ns;
    r.next <- (if r.next + 1 = r.cap then 0 else r.next + 1);
    if r.count < r.cap then r.count <- r.count + 1
  end

let record_since ph ~id ~conn ~start_ns =
  if Atomic.get on then
    record ph ~id ~conn ~start_ns ~dur_ns:(now_ns () - start_ns)

(* ---- dumping ---- *)

type event = {
  e_phase : phase;
  e_id : int;
  e_conn : int;
  e_start_ns : int;
  e_dur_ns : int;
  e_dom : int;
}

let events () =
  Mutex.lock rings_lock;
  let rs = !rings in
  Mutex.unlock rings_lock;
  List.concat_map
    (fun r ->
       let first = if r.count < r.cap then 0 else r.next in
       List.init r.count (fun i ->
           let b = (first + i) mod r.cap * fields in
           { e_phase = r.data.(b);
             e_id = r.data.(b + 1);
             e_conn = r.data.(b + 2);
             e_start_ns = r.data.(b + 3);
             e_dur_ns = r.data.(b + 4);
             e_dom = r.dom }))
    rs
  |> List.sort (fun a b -> compare (a.e_start_ns, a.e_dom) (b.e_start_ns, b.e_dom))

let dump_chrome () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf {|{"traceEvents":[|};
  List.iteri
    (fun i e ->
       if i > 0 then Buffer.add_char buf ',';
       Buffer.add_string buf
         (Printf.sprintf
            {|{"name":"%s","cat":"bbx","ph":"X","pid":1,"tid":%d,"ts":%.3f,"dur":%.3f,"args":{"conn":%d,"id":%d}}|}
            (phase_name e.e_phase) e.e_dom
            (float_of_int e.e_start_ns /. 1e3)
            (float_of_int e.e_dur_ns /. 1e3)
            e.e_conn e.e_id))
    (events ());
  Buffer.add_string buf {|],"displayTimeUnit":"ms"}|};
  Buffer.contents buf

let dump_jsonl () =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
       Buffer.add_string buf
         (Printf.sprintf
            {|{"phase":"%s","id":%d,"conn":%d,"dom":%d,"start_ns":%d,"dur_ns":%d}|}
            (phase_name e.e_phase) e.e_id e.e_conn e.e_dom e.e_start_ns e.e_dur_ns);
       Buffer.add_char buf '\n')
    (events ());
  Buffer.contents buf

let save ~path =
  let oc = open_out path in
  output_string oc
    (if Filename.check_suffix path ".jsonl" then dump_jsonl () else dump_chrome ());
  close_out oc

let reset () =
  Mutex.lock rings_lock;
  List.iter
    (fun r ->
       r.next <- 0;
       r.count <- 0)
    !rings;
  Mutex.unlock rings_lock
