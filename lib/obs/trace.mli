(** [Obs.Trace]: a preallocated per-domain ring-buffer flight recorder.

    Where {!Obs} answers "how much, in aggregate", the flight recorder
    answers "what happened to {e this} frame, when": fixed-size event
    slots (phase, span id, connection id, start timestamp, duration — five
    OCaml ints) land in a ring buffer private to the recording domain, so
    the hot path is one flag load, one branch and five integer stores —
    no allocation, no locks, no cross-domain traffic.  With recording
    disabled (the default) every {!record} is a single load-and-branch.

    Each domain lazily acquires its own ring on first record (registered
    in a process-wide list for {!events}); when a ring is full the oldest
    events are overwritten, which is exactly the flight-recorder contract:
    dumping always shows the most recent [capacity] events per domain.

    {b Dumping} merges every domain's ring, sorts by start time and
    renders either Chrome-trace-event JSON ({!dump_chrome} — loadable by
    [chrome://tracing] and Perfetto, with the recording domain as the
    track/tid and span/conn ids in [args]) or one JSON object per line
    ({!dump_jsonl}).  Dumps are best-effort snapshots: a domain recording
    concurrently with a dump may tear the handful of slots it is writing;
    quiesce the recorders (e.g. drain the daemon) for an exact window.

    Timestamps are nanoseconds relative to a process-start epoch
    ({!now_ns}), so they keep microsecond precision in a 63-bit int and
    convert losslessly to the microsecond scale Chrome traces use. *)

(** {1 Master switch} *)

(** Recording defaults to {e off}; the environment variable
    [BLINDBOX_TRACE=1] turns it on at startup, [set_enabled] at any
    time. *)
val set_enabled : bool -> unit

val enabled : unit -> bool

(** {1 Phases} *)

(** A registered phase (pipeline-stage) name; registration is idempotent
    by name and costs a mutex — do it at module init, never per event. *)
type phase

val phase : string -> phase

val phase_name : phase -> string

(** {1 Recording} *)

(** Nanoseconds since the process-start epoch.  Monotone enough for span
    arithmetic (wall clock under the hood, like {!Obs} spans). *)
val now_ns : unit -> int

(** [record ph ~id ~conn ~start_ns ~dur_ns] appends one event to the
    calling domain's ring.  [id] is the caller's span id (e.g. a frame
    sequence number; [-1] when absent), [conn] the connection id ([-1]
    when absent).  No-op when disabled. *)
val record : phase -> id:int -> conn:int -> start_ns:int -> dur_ns:int -> unit

(** [record_since ph ~id ~conn ~start_ns] = {!record} with
    [dur_ns = now_ns () - start_ns]. *)
val record_since : phase -> id:int -> conn:int -> start_ns:int -> unit

(** [set_capacity n] sets the ring capacity (events per domain) used by
    rings created {e after} the call; existing rings keep theirs.
    Default 8192. *)
val set_capacity : int -> unit

(** {1 Dumping} *)

type event = {
  e_phase : phase;
  e_id : int;
  e_conn : int;
  e_start_ns : int;
  e_dur_ns : int;
  e_dom : int;          (** recording domain's id *)
}

(** All buffered events across every domain's ring, oldest first. *)
val events : unit -> event list

(** Chrome trace-event JSON ([{"traceEvents":[...]}]) — complete ["X"]
    events, timestamps in microseconds, one track per recording domain. *)
val dump_chrome : unit -> string

(** One JSON object per line:
    [{"phase":...,"id":...,"conn":...,"dom":...,"start_ns":...,"dur_ns":...}]. *)
val dump_jsonl : unit -> string

(** [save ~path] writes {!dump_jsonl} when [path] ends in [.jsonl],
    {!dump_chrome} otherwise. *)
val save : path:string -> unit

(** [reset ()] empties every ring (capacities and registrations stay). *)
val reset : unit -> unit
