(* Process-wide metric registry.  Slots are records the instrumented
   modules obtain once (at init or connection setup) and bump directly;
   the registry only exists for registration-by-name and for rendering.

   Counters, gauges and histogram cells are [Atomic.t] so that shard
   workers on different domains (lib/mbox/shardpool.ml) can bump the same
   slot without losing increments.  The hot path is still one flag load,
   one branch and one fetch-and-add — no locks, no allocation.  Spans
   keep plain mutable fields: they bracket setup-path work and are
   documented single-domain (see obs.mli). *)

let on =
  Atomic.make
    (match Sys.getenv_opt "BLINDBOX_OBS" with
     | Some ("0" | "false" | "off") -> false
     | _ -> true)

let set_enabled b = Atomic.set on b
let enabled () = Atomic.get on

type counter = { c_name : string; c_cell : int Atomic.t }

type gauge = { g_name : string; g_cell : int Atomic.t }

type histogram = {
  h_name : string;
  bounds : int array;          (* ascending upper bounds; +Inf implicit *)
  counts : int Atomic.t array; (* length = Array.length bounds + 1 *)
  h_sum : int Atomic.t;
  h_count : int Atomic.t;
}

type span = {
  s_name : string;
  mutable s_count : int;
  mutable s_seconds : float;
  mutable s_alloc : float;     (* GC-allocated bytes across all entries *)
  s_owner : int Atomic.t;      (* domain holding the span open; -1 = closed *)
  mutable open_at : float;
  mutable open_alloc : float;
}

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram
  | Span of span

(* Registration and rendering are cold paths; a mutex makes them safe to
   call from any domain (worker domains never register, but nothing should
   break if one does). *)
let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let registry_lock = Mutex.create ()

let with_registry f =
  Mutex.lock registry_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_lock) f

let register name mk unwrap =
  with_registry @@ fun () ->
  match Hashtbl.find_opt registry name with
  | Some m ->
    (match unwrap m with
     | Some slot -> slot
     | None -> invalid_arg (Printf.sprintf "Obs: %S registered with another type" name))
  | None ->
    let slot = mk () in
    slot

let counter name =
  register name
    (fun () ->
       let c = { c_name = name; c_cell = Atomic.make 0 } in
       Hashtbl.add registry name (Counter c);
       c)
    (function Counter c -> Some c | _ -> None)

let incr c = if Atomic.get on then Atomic.incr c.c_cell
let add c n = if Atomic.get on then ignore (Atomic.fetch_and_add c.c_cell n : int)
let counter_value c = Atomic.get c.c_cell

let gauge name =
  register name
    (fun () ->
       let g = { g_name = name; g_cell = Atomic.make 0 } in
       Hashtbl.add registry name (Gauge g);
       g)
    (function Gauge g -> Some g | _ -> None)

let set_gauge g v = if Atomic.get on then Atomic.set g.g_cell v
let add_gauge g n = if Atomic.get on then ignore (Atomic.fetch_and_add g.g_cell n : int)
let gauge_value g = Atomic.get g.g_cell

let histogram name ~buckets =
  register name
    (fun () ->
       let bounds = Array.copy buckets in
       Array.iteri
         (fun i b -> if i > 0 && b <= bounds.(i - 1) then
             invalid_arg "Obs.histogram: buckets must be strictly ascending")
         bounds;
       let h =
         { h_name = name; bounds;
           counts = Array.init (Array.length bounds + 1) (fun _ -> Atomic.make 0);
           h_sum = Atomic.make 0; h_count = Atomic.make 0 }
       in
       Hashtbl.add registry name (Histogram h);
       h)
    (function Histogram h -> Some h | _ -> None)

let observe h v =
  if Atomic.get on then begin
    let n = Array.length h.bounds in
    let i = ref 0 in
    while !i < n && h.bounds.(!i) < v do Stdlib.incr i done;
    Atomic.incr h.counts.(!i);
    ignore (Atomic.fetch_and_add h.h_sum v : int);
    Atomic.incr h.h_count
  end

let histogram_count h = Atomic.get h.h_count
let histogram_sum h = Atomic.get h.h_sum
let histogram_bounds h = Array.copy h.bounds
let histogram_bucket_counts h = Array.map Atomic.get h.counts

(* Upper-bound percentile estimate: the first bucket bound whose cumulative
   count reaches the quantile (the +Inf bucket reports the last finite
   bound — a floor, but the histogram holds no finer information). *)
let percentile_of_counts ~bounds ~counts q =
  let total = Array.fold_left ( + ) 0 counts in
  if total = 0 then 0.0
  else begin
    let target = q *. float_of_int total in
    let cum = ref 0 and i = ref 0 and result = ref nan in
    while Float.is_nan !result && !i < Array.length counts do
      cum := !cum + counts.(!i);
      if float_of_int !cum >= target then
        result :=
          (if !i < Array.length bounds then float_of_int bounds.(!i)
           else if Array.length bounds = 0 then 0.0
           else float_of_int bounds.(Array.length bounds - 1));
      Stdlib.incr i
    done;
    if Float.is_nan !result then 0.0 else !result
  end

let histogram_percentile h q =
  percentile_of_counts ~bounds:h.bounds ~counts:(Array.map Atomic.get h.counts) q

let span name =
  register name
    (fun () ->
       let s =
         { s_name = name; s_count = 0; s_seconds = 0.0; s_alloc = 0.0;
           s_owner = Atomic.make (-1); open_at = -1.0; open_alloc = 0.0 }
       in
       Hashtbl.add registry name (Span s);
       s)
    (function Span s -> Some s | _ -> None)

(* A concurrent [span_enter] from a second domain while the span is open
   must not corrupt the accumulators: the opening domain takes ownership
   with a CAS, a losing domain drops its entry and bumps this counter
   instead.  Plain mutable fields stay safe because only the owning
   domain ever touches them between the CAS and the releasing exit. *)
let span_conflicts = counter "bbx_obs_span_conflicts_total"

let span_enter s =
  if Atomic.get on then begin
    let me = (Domain.self () :> int) in
    let cur = Atomic.get s.s_owner in
    if cur = me || (cur = -1 && Atomic.compare_and_set s.s_owner (-1) me) then begin
      (* re-enter on the owning domain restarts the span *)
      s.open_alloc <- Gc.allocated_bytes ();
      s.open_at <- Unix.gettimeofday ()
    end
    else incr span_conflicts
  end

let span_exit s =
  if Atomic.get on && Atomic.get s.s_owner = (Domain.self () :> int) then begin
    s.s_seconds <- s.s_seconds +. (Unix.gettimeofday () -. s.open_at);
    s.s_alloc <- s.s_alloc +. (Gc.allocated_bytes () -. s.open_alloc);
    s.s_count <- s.s_count + 1;
    s.open_at <- -1.0;
    Atomic.set s.s_owner (-1)
  end

let time s f =
  span_enter s;
  match f () with
  | x -> span_exit s; x
  | exception e -> span_exit s; raise e

let span_count s = s.s_count
let span_seconds s = s.s_seconds
let span_alloc_bytes s = s.s_alloc

(* ---- exposition ---- *)

(* A name may carry baked-in labels ([base{k="v"}]); Prometheus suffixes
   and TYPE headers apply to the base. *)
let split_labels name =
  match String.index_opt name '{' with
  | None -> (name, "")
  | Some i -> (String.sub name 0 i, String.sub name i (String.length name - i))

let sorted_metrics () =
  with_registry (fun () -> Hashtbl.fold (fun name m acc -> (name, m) :: acc) registry [])
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let fmt_float f =
  (* shortest representation that round-trips enough precision for metrics *)
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

(* merge a label suffix with extra labels: base{a="1"} + [le="5"] *)
let with_label labels extra =
  if labels = "" then Printf.sprintf "{%s}" extra
  else Printf.sprintf "%s,%s}" (String.sub labels 0 (String.length labels - 1)) extra

let render_prometheus () =
  let buf = Buffer.create 4096 in
  let typed = Hashtbl.create 32 in
  let type_header base kind =
    if not (Hashtbl.mem typed (base, kind)) then begin
      Hashtbl.add typed (base, kind) ();
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" base kind)
    end
  in
  List.iter
    (fun (name, m) ->
       let base, labels = split_labels name in
       match m with
       | Counter c ->
         type_header base "counter";
         Buffer.add_string buf (Printf.sprintf "%s%s %d\n" base labels (Atomic.get c.c_cell))
       | Gauge g ->
         type_header base "gauge";
         Buffer.add_string buf (Printf.sprintf "%s%s %d\n" base labels (Atomic.get g.g_cell))
       | Histogram h ->
         type_header base "histogram";
         let cum = ref 0 in
         Array.iteri
           (fun i bound ->
              cum := !cum + Atomic.get h.counts.(i);
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket%s %d\n" base
                   (with_label labels (Printf.sprintf "le=\"%d\"" bound)) !cum))
           h.bounds;
         cum := !cum + Atomic.get h.counts.(Array.length h.bounds);
         Buffer.add_string buf
           (Printf.sprintf "%s_bucket%s %d\n" base (with_label labels "le=\"+Inf\"") !cum);
         Buffer.add_string buf (Printf.sprintf "%s_sum%s %d\n" base labels (Atomic.get h.h_sum));
         Buffer.add_string buf (Printf.sprintf "%s_count%s %d\n" base labels (Atomic.get h.h_count))
       | Span s ->
         type_header (base ^ "_seconds_sum") "counter";
         Buffer.add_string buf
           (Printf.sprintf "%s_seconds_sum%s %s\n" base labels (fmt_float s.s_seconds));
         type_header (base ^ "_alloc_bytes_sum") "counter";
         Buffer.add_string buf
           (Printf.sprintf "%s_alloc_bytes_sum%s %s\n" base labels (fmt_float s.s_alloc));
         type_header (base ^ "_count") "counter";
         Buffer.add_string buf (Printf.sprintf "%s_count%s %d\n" base labels s.s_count))
    (sorted_metrics ());
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let dump_jsonl () =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (name, m) ->
       let line =
         match m with
         | Counter c ->
           Printf.sprintf {|{"metric":"%s","type":"counter","value":%d}|}
             (json_escape name) (Atomic.get c.c_cell)
         | Gauge g ->
           Printf.sprintf {|{"metric":"%s","type":"gauge","value":%d}|}
             (json_escape name) (Atomic.get g.g_cell)
         | Histogram h ->
           let buckets =
             String.concat ","
               (List.init (Array.length h.bounds)
                  (fun i ->
                     Printf.sprintf {|{"le":%d,"count":%d}|} h.bounds.(i)
                       (Atomic.get h.counts.(i)))
                @ [ Printf.sprintf {|{"le":"+Inf","count":%d}|}
                      (Atomic.get h.counts.(Array.length h.bounds)) ])
           in
           Printf.sprintf
             {|{"metric":"%s","type":"histogram","sum":%d,"count":%d,"buckets":[%s]}|}
             (json_escape name) (Atomic.get h.h_sum) (Atomic.get h.h_count) buckets
         | Span s ->
           Printf.sprintf
             {|{"metric":"%s","type":"span","count":%d,"seconds":%s,"alloc_bytes":%s}|}
             (json_escape name) s.s_count (fmt_float s.s_seconds) (fmt_float s.s_alloc)
       in
       Buffer.add_string buf line;
       Buffer.add_char buf '\n')
    (sorted_metrics ());
  Buffer.contents buf

let save ~path =
  let is_json =
    Filename.check_suffix path ".json" || Filename.check_suffix path ".jsonl"
  in
  let oc = open_out path in
  output_string oc (if is_json then dump_jsonl () else render_prometheus ());
  close_out oc

let reset () =
  with_registry @@ fun () ->
  Hashtbl.iter
    (fun _ m ->
       match m with
       | Counter c -> Atomic.set c.c_cell 0
       | Gauge g -> Atomic.set g.g_cell 0
       | Histogram h ->
         Array.iter (fun cell -> Atomic.set cell 0) h.counts;
         Atomic.set h.h_sum 0;
         Atomic.set h.h_count 0
       | Span s ->
         s.s_count <- 0;
         s.s_seconds <- 0.0;
         s.s_alloc <- 0.0;
         s.open_at <- -1.0;
         Atomic.set s.s_owner (-1))
    registry
