(* Process-wide metric registry.  Slots are plain mutable records the
   instrumented modules obtain once (at init or connection setup) and bump
   directly; the registry only exists for registration-by-name and for
   rendering.  The hot path is [if !on then slot.value <- slot.value + n]. *)

let on =
  ref
    (match Sys.getenv_opt "BLINDBOX_OBS" with
     | Some ("0" | "false" | "off") -> false
     | _ -> true)

let set_enabled b = on := b
let enabled () = !on

type counter = { c_name : string; mutable c_value : int }

type gauge = { g_name : string; mutable g_value : int }

type histogram = {
  h_name : string;
  bounds : int array;          (* ascending upper bounds; +Inf implicit *)
  counts : int array;          (* length = Array.length bounds + 1 *)
  mutable h_sum : int;
  mutable h_count : int;
}

type span = {
  s_name : string;
  mutable s_count : int;
  mutable s_seconds : float;
  mutable s_alloc : float;     (* GC-allocated bytes across all entries *)
  mutable open_at : float;     (* < 0.0 when the span is closed *)
  mutable open_alloc : float;
}

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram
  | Span of span

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

let register name mk unwrap =
  match Hashtbl.find_opt registry name with
  | Some m ->
    (match unwrap m with
     | Some slot -> slot
     | None -> invalid_arg (Printf.sprintf "Obs: %S registered with another type" name))
  | None ->
    let slot = mk () in
    slot

let counter name =
  register name
    (fun () ->
       let c = { c_name = name; c_value = 0 } in
       Hashtbl.add registry name (Counter c);
       c)
    (function Counter c -> Some c | _ -> None)

let incr c = if !on then c.c_value <- c.c_value + 1
let add c n = if !on then c.c_value <- c.c_value + n
let counter_value c = c.c_value

let gauge name =
  register name
    (fun () ->
       let g = { g_name = name; g_value = 0 } in
       Hashtbl.add registry name (Gauge g);
       g)
    (function Gauge g -> Some g | _ -> None)

let set_gauge g v = if !on then g.g_value <- v
let gauge_value g = g.g_value

let histogram name ~buckets =
  register name
    (fun () ->
       let bounds = Array.copy buckets in
       Array.iteri
         (fun i b -> if i > 0 && b <= bounds.(i - 1) then
             invalid_arg "Obs.histogram: buckets must be strictly ascending")
         bounds;
       let h =
         { h_name = name; bounds; counts = Array.make (Array.length bounds + 1) 0;
           h_sum = 0; h_count = 0 }
       in
       Hashtbl.add registry name (Histogram h);
       h)
    (function Histogram h -> Some h | _ -> None)

let observe h v =
  if !on then begin
    let n = Array.length h.bounds in
    let i = ref 0 in
    while !i < n && h.bounds.(!i) < v do Stdlib.incr i done;
    h.counts.(!i) <- h.counts.(!i) + 1;
    h.h_sum <- h.h_sum + v;
    h.h_count <- h.h_count + 1
  end

let histogram_count h = h.h_count
let histogram_sum h = h.h_sum

let span name =
  register name
    (fun () ->
       let s =
         { s_name = name; s_count = 0; s_seconds = 0.0; s_alloc = 0.0;
           open_at = -1.0; open_alloc = 0.0 }
       in
       Hashtbl.add registry name (Span s);
       s)
    (function Span s -> Some s | _ -> None)

let span_enter s =
  if !on then begin
    s.open_alloc <- Gc.allocated_bytes ();
    s.open_at <- Unix.gettimeofday ()
  end

let span_exit s =
  if !on && s.open_at >= 0.0 then begin
    s.s_seconds <- s.s_seconds +. (Unix.gettimeofday () -. s.open_at);
    s.s_alloc <- s.s_alloc +. (Gc.allocated_bytes () -. s.open_alloc);
    s.s_count <- s.s_count + 1;
    s.open_at <- -1.0
  end

let time s f =
  span_enter s;
  match f () with
  | x -> span_exit s; x
  | exception e -> span_exit s; raise e

let span_count s = s.s_count
let span_seconds s = s.s_seconds
let span_alloc_bytes s = s.s_alloc

(* ---- exposition ---- *)

(* A name may carry baked-in labels ([base{k="v"}]); Prometheus suffixes
   and TYPE headers apply to the base. *)
let split_labels name =
  match String.index_opt name '{' with
  | None -> (name, "")
  | Some i -> (String.sub name 0 i, String.sub name i (String.length name - i))

let sorted_metrics () =
  Hashtbl.fold (fun name m acc -> (name, m) :: acc) registry []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let fmt_float f =
  (* shortest representation that round-trips enough precision for metrics *)
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

(* merge a label suffix with extra labels: base{a="1"} + [le="5"] *)
let with_label labels extra =
  if labels = "" then Printf.sprintf "{%s}" extra
  else Printf.sprintf "%s,%s}" (String.sub labels 0 (String.length labels - 1)) extra

let render_prometheus () =
  let buf = Buffer.create 4096 in
  let typed = Hashtbl.create 32 in
  let type_header base kind =
    if not (Hashtbl.mem typed (base, kind)) then begin
      Hashtbl.add typed (base, kind) ();
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" base kind)
    end
  in
  List.iter
    (fun (name, m) ->
       let base, labels = split_labels name in
       match m with
       | Counter c ->
         type_header base "counter";
         Buffer.add_string buf (Printf.sprintf "%s%s %d\n" base labels c.c_value)
       | Gauge g ->
         type_header base "gauge";
         Buffer.add_string buf (Printf.sprintf "%s%s %d\n" base labels g.g_value)
       | Histogram h ->
         type_header base "histogram";
         let cum = ref 0 in
         Array.iteri
           (fun i bound ->
              cum := !cum + h.counts.(i);
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket%s %d\n" base
                   (with_label labels (Printf.sprintf "le=\"%d\"" bound)) !cum))
           h.bounds;
         cum := !cum + h.counts.(Array.length h.bounds);
         Buffer.add_string buf
           (Printf.sprintf "%s_bucket%s %d\n" base (with_label labels "le=\"+Inf\"") !cum);
         Buffer.add_string buf (Printf.sprintf "%s_sum%s %d\n" base labels h.h_sum);
         Buffer.add_string buf (Printf.sprintf "%s_count%s %d\n" base labels h.h_count)
       | Span s ->
         type_header (base ^ "_seconds_sum") "counter";
         Buffer.add_string buf
           (Printf.sprintf "%s_seconds_sum%s %s\n" base labels (fmt_float s.s_seconds));
         type_header (base ^ "_alloc_bytes_sum") "counter";
         Buffer.add_string buf
           (Printf.sprintf "%s_alloc_bytes_sum%s %s\n" base labels (fmt_float s.s_alloc));
         type_header (base ^ "_count") "counter";
         Buffer.add_string buf (Printf.sprintf "%s_count%s %d\n" base labels s.s_count))
    (sorted_metrics ());
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let dump_jsonl () =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (name, m) ->
       let line =
         match m with
         | Counter c ->
           Printf.sprintf {|{"metric":"%s","type":"counter","value":%d}|}
             (json_escape name) c.c_value
         | Gauge g ->
           Printf.sprintf {|{"metric":"%s","type":"gauge","value":%d}|}
             (json_escape name) g.g_value
         | Histogram h ->
           let buckets =
             String.concat ","
               (List.init (Array.length h.bounds)
                  (fun i -> Printf.sprintf {|{"le":%d,"count":%d}|} h.bounds.(i) h.counts.(i))
                @ [ Printf.sprintf {|{"le":"+Inf","count":%d}|} h.counts.(Array.length h.bounds) ])
           in
           Printf.sprintf
             {|{"metric":"%s","type":"histogram","sum":%d,"count":%d,"buckets":[%s]}|}
             (json_escape name) h.h_sum h.h_count buckets
         | Span s ->
           Printf.sprintf
             {|{"metric":"%s","type":"span","count":%d,"seconds":%s,"alloc_bytes":%s}|}
             (json_escape name) s.s_count (fmt_float s.s_seconds) (fmt_float s.s_alloc)
       in
       Buffer.add_string buf line;
       Buffer.add_char buf '\n')
    (sorted_metrics ());
  Buffer.contents buf

let save ~path =
  let is_json =
    Filename.check_suffix path ".json" || Filename.check_suffix path ".jsonl"
  in
  let oc = open_out path in
  output_string oc (if is_json then dump_jsonl () else render_prometheus ());
  close_out oc

let reset () =
  Hashtbl.iter
    (fun _ m ->
       match m with
       | Counter c -> c.c_value <- 0
       | Gauge g -> g.g_value <- 0
       | Histogram h ->
         Array.fill h.counts 0 (Array.length h.counts) 0;
         h.h_sum <- 0;
         h.h_count <- 0
       | Span s ->
         s.s_count <- 0;
         s.s_seconds <- 0.0;
         s.s_alloc <- 0.0;
         s.open_at <- -1.0)
    registry
