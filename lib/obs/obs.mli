(** [bbx_obs]: low-overhead metrics for the streaming DPI path.

    A process-wide registry of named counters, gauges, fixed-bucket
    histograms and span timers.  The design rule is that the {e hot path}
    (one bump per token or per tree lookup) costs one flag load, one
    branch and one integer store — no closures, no allocation, no hashing.
    All hashing happens once, at registration time, which handlers do at
    module-initialisation or connection-setup time and cache in a slot.

    Metrics are cumulative since process start (or the last {!reset}).
    The whole registry renders to Prometheus text exposition
    ({!render_prometheus}) or JSONL ({!dump_jsonl}).

    {b Domain safety}: counters, gauges and histograms are [Atomic]-backed
    — concurrent bumps from any number of OCaml domains (e.g. the
    {!Bbx_mbox.Shardpool} workers) lose no increments, and registration
    plus exposition are mutex-protected.  Spans accumulate in plain
    mutable fields but are guarded by an atomic owner slot: {!span_enter}
    takes ownership with a compare-and-set, so a concurrent enter from a
    second domain while the span is open is {e dropped} (counted in
    [bbx_obs_span_conflicts_total]) instead of corrupting the
    accumulators, and only the owning domain's {!span_exit} accumulates.

    Naming scheme: [bbx_<subsystem>_<quantity>[_<unit>]], with Prometheus
    label syntax baked into the name string where a dimension is needed
    (e.g. [bbx_tokenizer_tokens_total{kind="window"}]).  Counters end in
    [_total], gauges are bare, histograms get [_bucket]/[_sum]/[_count]
    expansions, spans expand to [_seconds_sum], [_alloc_bytes_sum] and
    [_count]. *)

(** {1 Master switch} *)

(** [set_enabled b] flips instrumentation globally.  Defaults to [true];
    the environment variable [BLINDBOX_OBS=0] turns it off at startup.
    With instrumentation off every hot-path operation is a single
    load-and-branch. *)
val set_enabled : bool -> unit

val enabled : unit -> bool

(** {1 Counters} *)

type counter

(** [counter name] registers (or retrieves — registration is idempotent by
    name) a monotonic counter slot. *)
val counter : string -> counter

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

(** {1 Gauges} *)

type gauge

val gauge : string -> gauge
val set_gauge : gauge -> int -> unit

(** [add_gauge g n] bumps the gauge by [n] (which may be negative).  The
    delta form is the domain-safe way to maintain an aggregate gauge from
    several shards — concurrent [set_gauge] calls would clobber each
    other. *)
val add_gauge : gauge -> int -> unit

val gauge_value : gauge -> int

(** {1 Histograms} *)

type histogram

(** [histogram name ~buckets] — [buckets] are ascending upper bounds; an
    implicit [+Inf] bucket is appended.  Re-registering an existing name
    returns the existing histogram (its buckets win). *)
val histogram : string -> buckets:int array -> histogram

(** [observe h v] bumps the first bucket with bound [>= v] ([+Inf] when
    none), plus the running sum and count. *)
val observe : histogram -> int -> unit

val histogram_count : histogram -> int
val histogram_sum : histogram -> int

(** Snapshot of the finite upper bounds (ascending, [+Inf] excluded). *)
val histogram_bounds : histogram -> int array

(** Snapshot of per-bucket (non-cumulative) counts; length
    [Array.length (histogram_bounds h) + 1], last cell is [+Inf]. *)
val histogram_bucket_counts : histogram -> int array

(** [percentile_of_counts ~bounds ~counts q] estimates the [q]-quantile
    ([0 < q <= 1]) from a bucket snapshot shaped like
    {!histogram_bounds}/{!histogram_bucket_counts}: it returns the first
    bucket bound whose cumulative count reaches the quantile — an upper
    bound, except for mass in the [+Inf] bucket which reports the last
    finite bound (a floor; the histogram holds no finer information).
    [0.0] when the counts are all zero.  Taking snapshots as arrays lets
    callers diff two snapshots to get interval percentiles. *)
val percentile_of_counts : bounds:int array -> counts:int array -> float -> float

(** [histogram_percentile h q] = {!percentile_of_counts} over the live
    cells of [h]. *)
val histogram_percentile : histogram -> float -> float

(** {1 Spans}

    A span accumulates wall-clock seconds, GC-allocated bytes and an entry
    count across [enter]/[exit] pairs.  Spans are not reentrant: the open
    timestamp lives in the span slot itself so that entering costs no
    allocation. *)

type span

val span : string -> span

(** [span_enter sp] records the open timestamp and GC mark and takes
    ownership of the span for the calling domain; a second [span_enter]
    from the {e same} domain before [span_exit] restarts the span, while
    one from another domain is dropped and counted in
    [bbx_obs_span_conflicts_total]. *)
val span_enter : span -> unit

(** [span_exit sp] accumulates elapsed seconds and allocated bytes since
    the matching {!span_enter} and releases ownership; a no-op if the
    span is not open or owned by another domain. *)
val span_exit : span -> unit

(** [time sp f] = [span_enter sp; f ()] with [span_exit] on both return
    and raise.  Allocates a closure — setup paths only, not per-token. *)
val time : span -> (unit -> 'a) -> 'a

val span_count : span -> int
val span_seconds : span -> float
val span_alloc_bytes : span -> float

(** {1 Exposition} *)

(** Prometheus text exposition (sorted by metric name, with [# TYPE]
    headers). *)
val render_prometheus : unit -> string

(** One JSON object per line: [{"metric":...,"type":...,"value":...}] for
    counters/gauges, richer objects for histograms and spans. *)
val dump_jsonl : unit -> string

(** [save ~path] writes {!dump_jsonl} when [path] ends in [.json]/[.jsonl],
    {!render_prometheus} otherwise. *)
val save : path:string -> unit

(** [reset ()] zeroes every registered metric (registrations, slots and
    cached handles stay valid). *)
val reset : unit -> unit
