(** A complete BlindBox HTTPS connection (paper Fig. 1): sender S,
    receiver R and middlebox MB wired together in-process.

    [establish] runs the SSL handshake (key agreement + derivation of
    [k_ssl]/[k]/[k_rand]), then connection setup with the middlebox
    (obfuscated rule encryption over every distinct rule-keyword chunk).
    [send] then drives one message through the full pipeline:

    + S encrypts the payload into an SSL record, tokenizes it (window- or
      delimiter-based) and DPIEnc-encrypts the tokens;
    + MB runs BlindBox Detect over the encrypted tokens, records the SSL
      stream, and — under probable cause — recovers [k_ssl] on a keyword
      match and decrypts the stream for full-rule (pcre) evaluation;
    + R decrypts the record and {e validates} the token stream by
      re-tokenizing the plaintext and comparing (§3.4); a cheating sender
      raises {!Evasion_detected}. *)

type tokenization = Window | Delimiter

type rule_prep_mode =
  | Garbled                       (** the real protocol: garbled circuits + OT *)
  | Direct
  (** trusted-simulation shortcut: MB is handed [AES_k(chunk)] directly.
      Identical detection behaviour; used by benches that isolate
      detection cost from setup cost. *)

type config = {
  mode : Bbx_dpienc.Dpienc.mode;
  tokenization : tokenization;
  rule_prep : rule_prep_mode;
  salt0 : int;
  reset_period : int;  (** bytes between salt-counter resets; 0 = never *)
  setup_domains : int;
  (** worker domains for the parallel stages of obfuscated rule
      encryption ({!Ruleprep}); 1 = fully sequential.  Output is
      byte-identical at any count. *)
  detect_index : Bbx_detect.Detect.index_backend;
  (** cipher-index backend for the middlebox engines (default
      {!Bbx_detect.Detect.Hash}; [Avl] is the reference tree).  Both
      produce identical events. *)
  tier : Bbx_rules.Classify.protocol_class;
  (** highest BlindBox protocol the middlebox engines execute (default
      [Protocol_III]); rules needing a higher protocol are ignored. *)
  tier_budget : Bbx_mbox.Engine.budget;
  (** per-flow Protocol III escalation budget (default
      {!Bbx_mbox.Engine.default_budget}). *)
  aes_kernel : Bbx_dpienc.Dpienc.aes_kernel;
  (** AES path for the hot loops (default [Bitsliced]): sender token
      encryption, Direct rule prep, and tier-3 record decryption all
      batch same-key AES through {!Bbx_crypto.Aes_bs}.  [Scalar] is the
      single-block reference path — both produce byte-identical traffic
      and events. *)
}

val default_config : config

type setup_stats = {
  chunk_count : int;
  rule_prep_stats : Ruleprep.stats option;  (** [None] in [Direct] mode *)
  setup_seconds : float;
}

type t

exception Evasion_detected of string

(** Raised by {!send} once a [drop]-action rule has fired: the middlebox
    blocks the connection (paper §6: "under Protocols I and II, the
    middlebox blocks the connection"). *)
exception Connection_blocked

(** [establish ?config ?seed ?rg ~rules ()] — [rg] (the rule generator's
    keypair) enables signature verification during rule preparation; when
    absent, [Garbled] prep runs unchecked. *)
val establish :
  ?config:config ->
  ?seed:string ->
  ?rg:Bbx_sig.Rsa.keypair ->
  rules:Bbx_rules.Rule.t list ->
  unit ->
  t * setup_stats

(** Session resumption (paper §7.2: "BlindBox is most fit for settings
    using long or persistent connections through SPDY-like protocols or
    tunneling").  A resumption ticket carries the session keys and the
    prepared encrypted rules, so a resumed connection skips both the
    handshake and the expensive obfuscated rule encryption.  Each
    resumption re-keys the record layer (fresh direction label), so no
    keystream is ever reused. *)
type ticket

(** [resumption_ticket t] — capture the state needed to resume. *)
val resumption_ticket : t -> ticket

(** [resume ?config ticket ~rules ()] — [rules] must be the same ruleset
    the ticket was created with (checked by chunk count). *)
val resume : ?config:config -> ticket -> rules:Bbx_rules.Rule.t list -> unit -> t

(** [blocked t] — has the middlebox blocked this connection? *)
val blocked : t -> bool

(** [update_rules t ?remove_sids rules] ships a rule update onto the live
    connection without a re-handshake: rules whose sid appears in
    [remove_sids] are withdrawn from the middlebox, [rules] are added, and
    obfuscated rule encryption runs only for chunks not already prepared
    (under a fresh garbling generation — see {!Ruleprep.update}).  The
    update ends with a forced salt reset so both sides stay in lock-step
    across the engine rebuild.  Returns the number of rules added and the
    stats of the delta preparation ([None] in [Direct] mode). *)
val update_rules :
  t -> ?remove_sids:int list -> Bbx_rules.Rule.t list ->
  int * Ruleprep.stats option

(** [add_rules t rules] = [update_rules t rules] (pure addition). *)
val add_rules : t -> Bbx_rules.Rule.t list -> int * Ruleprep.stats option

type delivery = {
  plaintext : string;   (** payload as decrypted and validated by R *)
  verdicts : Bbx_mbox.Engine.verdict list;
  (** rules newly triggered by this send (each rule is reported once per
      connection; see {!mb_verdicts} for the cumulative view) *)
  record_bytes : int;   (** SSL record bytes on the wire *)
  token_bytes : int;    (** encrypted-token bytes on the wire *)
  token_count : int;
}

(** [send t payload] drives one sender->receiver message through MB. *)
val send : t -> string -> delivery

(** [send_binary t payload] ships a payload without tokenizing it — the
    paper's §3 optimisation for images/video, which an HTTP-only IDS does
    not analyse.  The receiver checks that no tokens were attached. *)
val send_binary : t -> string -> delivery

(** [send_evading t payload ~drop_tokens] simulates a malicious sender
    that omits its first [drop_tokens] tokens; the receiver's validation
    raises {!Evasion_detected}. *)
val send_evading : t -> string -> drop_tokens:int -> delivery

(** [mb_recovered_key t] — [Some k_ssl] once probable cause has fired. *)
val mb_recovered_key : t -> string option

(** [mb_decrypted_stream t] — the stream as decrypted by the middlebox's
    ssldump element, available only after probable cause. *)
val mb_decrypted_stream : t -> string option

(** Keyword-level matches observed by MB so far. *)
val mb_keyword_hits : t -> (string * int) list

(** All rule verdicts for the connection so far (cumulative). *)
val mb_verdicts : t -> Bbx_mbox.Engine.verdict list

(** Where the middlebox's escalation state machine sits for this
    connection (see {!Bbx_mbox.Engine.escalation}). *)
val mb_escalation : t -> [ `Idle | `Gated | `Unlocked | `Exhausted ]


(** Bidirectional connections: requests and responses are separate
    BlindBox streams through the same middlebox, sharing one handshake and
    one (expensive) rule preparation.  Rules carrying a [flow] direction
    ([from_server], [to_server], ...) are only evaluated on the matching
    direction, like the paper's example rule 2003296. *)
module Duplex : sig
  type duplex

  val establish :
    ?config:config ->
    ?seed:string ->
    ?rg:Bbx_sig.Rsa.keypair ->
    rules:Bbx_rules.Rule.t list ->
    unit ->
    duplex * setup_stats

  (** [client_send d payload] — request direction.  Raises
      {!Connection_blocked} if either direction was blocked. *)
  val client_send : duplex -> string -> delivery

  (** [server_send d payload] — response direction. *)
  val server_send : duplex -> string -> delivery

  val blocked : duplex -> bool
end


(** Many sender/middlebox connections multiplexed through one
    domain-sharded middlebox ({!Bbx_mbox.Shardpool}).

    A fleet is one {e tenant}: a single handshake agrees the tenant keys,
    one rule preparation and one expanded detection keyset are shared —
    read-only — by every connection, and each connection derives its own
    record-layer key ([KDF(k_ssl, "fleet-conn-<i>")]).  Setup is
    therefore O(ruleset) once plus O(1) per connection, and steady-state
    per-connection footprint is flat (no per-connection rule tables or
    expanded key schedules).  The trade-off, inherent to key sharing: a
    keyword produces correlatable token values across the {e same}
    tenant's flows within a salt window.  Each connection keeps its
    DPIEnc sender state on the submitting side; the middlebox half lives
    on whichever pool worker domain owns the connection.  {!Fleet.submit}
    encrypts a payload and enqueues the wire delivery without waiting;
    {!Fleet.drain} collects verdicts in submission order.

    Unlike {!send}, a fleet has no in-process receiver, so receiver-side
    token validation does not run.  In [Probable] mode at tier
    [Protocol_III] the sender does seal and ship the SSL record stream
    alongside the tokens ({!Bbx_mbox.Shardpool.record_stream}), so the
    middlebox runs full probable-cause escalation — regex confirmation
    over the recovered plaintext — exactly as in {!send}. *)
module Fleet : sig
  type fleet

  (** [establish ?config ?seed ?domains ~conns ~rules ()] — sets up
      [conns] connections (ids [0..conns-1]) over a pool of [domains]
      workers (default: {!Bbx_mbox.Shardpool.create}'s default). *)
  val establish :
    ?config:config ->
    ?seed:string ->
    ?domains:int ->
    conns:int ->
    rules:Bbx_rules.Rule.t list ->
    unit ->
    fleet

  (** [submit t ~conn payload] tokenizes + DPIEnc-encrypts [payload] on
      the calling domain and enqueues the wire delivery; returns its
      submission ticket.  Handles periodic salt resets exactly like
      {!send}.  Deliveries submitted after the connection blocks are
      dropped by the pool (no verdict callback). *)
  val submit : fleet -> conn:int -> string -> int

  (** [drain t ~f] — see {!Bbx_mbox.Shardpool.drain}. *)
  val drain :
    fleet -> f:(seq:int -> conn_id:int -> Bbx_mbox.Engine.verdict list -> unit) -> unit

  (** [update_rules t ?remove_sids rules] applies a rule update to every
      live connection in the fleet: the delta is prepared {e once} under
      the tenant keys (one incremental {!Ruleprep} run, regardless of
      connection count), then every connection ships the new encryptions
      to its shard through its per-connection FIFO mailbox and finishes
      with a forced salt reset — no re-handshake, no reconnection. *)
  val update_rules : fleet -> ?remove_sids:int list -> Bbx_rules.Rule.t list -> unit

  (** [remove t ~conn] tears one connection down end to end — sender
      state and the shard-side engine both go (idempotent).  The shared
      tenant preparation stays. *)
  val remove : fleet -> conn:int -> unit

  (** [migrate t ~conn ~shard] re-pins a live connection onto another
      pool shard (drain through the FIFO mailbox, serialise, resume) —
      see {!Bbx_mbox.Shardpool.migrate}.  Verdicts and stats are
      invariant under migration. *)
  val migrate : fleet -> conn:int -> shard:int -> unit

  (** The pool shard currently owning [conn]. *)
  val conn_shard : fleet -> conn:int -> int

  (** [rebalance t] — even out connections across shards; returns how
      many moved ({!Bbx_mbox.Shardpool.rebalance}). *)
  val rebalance : fleet -> int

  (** Approximate resident bytes of all shard-side per-connection state
      (refreshes the [bbx_conn_bytes] gauge). *)
  val conn_bytes : fleet -> int

  (** [blocked t ~conn] — quiesces the owning worker first. *)
  val blocked : fleet -> conn:int -> bool

  (** Aggregate middlebox statistics over all shards. *)
  val stats : fleet -> Bbx_mbox.Middlebox.stats

  val flow_stats : fleet -> conn:int -> Bbx_mbox.Middlebox.flow_stats

  (** Number of pool worker domains. *)
  val domains : fleet -> int

  (** Stop and join the pool's worker domains (idempotent). *)
  val shutdown : fleet -> unit

  (** [with_fleet ?config ?seed ?domains ~conns ~rules f] — {!establish},
      run [f], and {!shutdown} even when [f] raises, so worker domains
      never outlive an exception. *)
  val with_fleet :
    ?config:config ->
    ?seed:string ->
    ?domains:int ->
    conns:int ->
    rules:Bbx_rules.Rule.t list ->
    (fleet -> 'a) ->
    'a
end
