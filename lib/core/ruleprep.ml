open Bbx_circuit
open Bbx_crypto
open Bbx_garble
open Bbx_ot
open Bbx_tokenizer

type stats = {
  circuits : int;
  circuit_bytes : int;
  ot_bytes : int;
  garble_seconds : float;
  eval_seconds : float;
}

(* The tower-field AES circuit (9 000 AND gates) with half-gates garbling
   lands per-circuit sizes near the paper's 599 KB; the algebraic circuit
   is kept for the circuit tests and garbling ablations. *)
let circuit =
  let c = lazy (Aes_circuit.build_tower ()) in
  fun () -> Lazy.force c

let chunk_bits_per_circuit = 8 * Tokenizer.token_len (* 64 *)

(* One deterministic garbling per (generation, chunk index); both endpoints
   derive the same DRBG from k_rand so their circuits agree byte-for-byte.
   The generation label keeps rule *updates* on fresh randomness — garbled
   circuits must never be reused across different evaluator inputs. *)
let garble_for_chunk ~generation ~k_rand idx c =
  let drbg =
    Drbg.create
      (Kdf.derive ~secret:k_rand ~label:(Printf.sprintf "garble-%s-%d" generation idx) 32)
  in
  Garble.garble drbg c

let prepare_internal ?k_rand_receiver ?(generation = "initial") ~k ~k_rand ~chunks () =
  Array.iter
    (fun chunk ->
       if String.length chunk <> Tokenizer.token_len then
         invalid_arg "Ruleprep: chunk must be token-sized")
    chunks;
  let c = circuit () in
  let n = Array.length chunks in
  let raw_key = Bbx_dpienc.Dpienc.raw_key_of_secret k in
  let key_bits = Circuit.bits_of_string raw_key in
  (* Endpoint S garbles; endpoint R's copy is re-derived and checked. *)
  let t0 = Unix.gettimeofday () in
  let garblings_s = Array.init n (fun i -> garble_for_chunk ~generation ~k_rand i c) in
  let garble_seconds = Unix.gettimeofday () -. t0 in
  (* The receiver independently re-derives every circuit from its own copy
     of k_rand; the middlebox accepts only byte-identical garblings (at
     least one endpoint is honest, so agreement implies honesty). *)
  let k_rand_r = Option.value k_rand_receiver ~default:k_rand in
  let garblings_r =
    Array.init n (fun i -> fst (garble_for_chunk ~generation ~k_rand:k_rand_r i c))
  in
  Array.iteri
    (fun i (g_s, _) ->
       if not (Garble.equal g_s garblings_r.(i)) then
         invalid_arg "Ruleprep: endpoint garblings disagree (malicious endpoint?)")
    garblings_s;
  (* Batched IKNP oblivious transfer for every chunk bit of every circuit:
     the middlebox's choice bits are the chunk bits; the endpoints' message
     pairs are the corresponding input-wire labels. *)
  let msg_first, _ = Aes_circuit.msg_input_range in
  let messages =
    Array.concat
      (List.init n (fun i ->
           let _, secrets = garblings_s.(i) in
           Array.init chunk_bits_per_circuit (fun b ->
               Garble.input_label_pair secrets ~wire:(msg_first + b))))
  in
  let choices =
    Array.concat
      (List.init n (fun i ->
           Array.sub (Circuit.bits_of_string chunks.(i)) 0 chunk_bits_per_circuit))
  in
  let chunk_labels, ot_bytes =
    if n = 0 then ([||], 0)
    else
      Extension.run
        ~sender_drbg:(Drbg.create (Kdf.derive ~secret:k_rand ~label:"ot-endpoint" 32))
        ~receiver_drbg:(Drbg.create (Sha256.digest (String.concat "" (Array.to_list chunks) ^ "mb-ot")))
        ~messages ~choices
  in
  (* Middlebox evaluation: key labels and zero-pad labels arrive directly
     from the endpoints; chunk labels come from the OT. *)
  let t1 = Unix.gettimeofday () in
  let encs =
    Array.init n (fun i ->
        let g, secrets = garblings_s.(i) in
        let labels =
          Array.init c.Circuit.n_inputs (fun w ->
              if w < 128 then Garble.encode_input secrets ~wire:w key_bits.(w)
              else if w < msg_first + chunk_bits_per_circuit then
                chunk_labels.((i * chunk_bits_per_circuit) + (w - msg_first))
              else Garble.encode_input secrets ~wire:w false)
        in
        Circuit.string_of_bits (Garble.eval c g labels))
  in
  let eval_seconds = Unix.gettimeofday () -. t1 in
  let circuit_bytes = Array.fold_left (fun acc (g, _) -> acc + Garble.size_bytes g) 0 garblings_s in
  (encs,
   { circuits = n; circuit_bytes; ot_bytes; garble_seconds; eval_seconds })

let prepare_unchecked ?generation ~k ~k_rand ~chunks () =
  prepare_internal ?generation ~k ~k_rand ~chunks ()

(* Test hook for the malicious-endpoint case: endpoints with different
   randomness (i.e. at least one cheating on the agreed seed) must be
   rejected by the middlebox's equality check. *)
let prepare_distrusting ~k ~k_rand_sender ~k_rand_receiver ~chunks =
  prepare_internal ~k_rand_receiver ~k ~k_rand:k_rand_sender ~chunks ()

let prepare ?generation ~k ~k_rand ~chunks ~signatures ~rg_key () =
  if Array.length signatures <> Array.length chunks then
    invalid_arg "Ruleprep.prepare: one signature per chunk required";
  Array.iteri
    (fun i chunk ->
       if not (Bbx_sig.Rsa.verify rg_key ~signature:signatures.(i) chunk) then
         invalid_arg (Printf.sprintf "Ruleprep.prepare: bad RG signature on chunk %d" i))
    chunks;
  prepare_internal ?generation ~k ~k_rand ~chunks ()
