open Bbx_circuit
open Bbx_crypto
open Bbx_garble
open Bbx_ot
open Bbx_tokenizer
module Obs = Bbx_obs.Obs
module Pool = Bbx_exec.Pool

(* Setup-cost metrics: `blindbox stats` reports obfuscated rule
   encryption next to the data-path counters.  The spans double as the
   per-call timing source — [stats] seconds are span-seconds deltas, so
   they read 0.0 when observability is disabled (BLINDBOX_OBS=0). *)
let obs_garble = Obs.span "bbx_ruleprep_garble"
let obs_ot = Obs.span "bbx_ruleprep_ot"
let obs_eval = Obs.span "bbx_ruleprep_eval"
let obs_circuits = Obs.counter "bbx_ruleprep_circuits_total"
let obs_circuit_bytes = Obs.counter "bbx_ruleprep_circuit_bytes_total"
let obs_ot_bytes = Obs.counter "bbx_ruleprep_ot_bytes_total"

type stats = {
  circuits : int;
  circuit_bytes : int;
  ot_bytes : int;
  garble_seconds : float;
  eval_seconds : float;
}

type prepared = {
  chunks : string array;
  encs : string array;
  generation : int;
}

(* The tower-field AES circuit (9 000 AND gates) with half-gates garbling
   lands per-circuit sizes near the paper's 599 KB; the algebraic circuit
   is kept for the circuit tests and garbling ablations. *)
let circuit =
  let c = lazy (Aes_circuit.build_tower ()) in
  fun () -> Lazy.force c

let chunk_bits_per_circuit = 8 * Tokenizer.token_len (* 64 *)

(* One deterministic garbling per (generation, chunk index); both endpoints
   derive the same DRBG from k_rand so their circuits agree byte-for-byte.
   The generation label keeps rule *updates* on fresh randomness — garbled
   circuits must never be reused across different evaluator inputs. *)
let garble_for_chunk ~generation ~k_rand idx c =
  let drbg =
    Drbg.create
      (Kdf.derive ~secret:k_rand ~label:(Printf.sprintf "garble-%s-%d" generation idx) 32)
  in
  Garble.garble drbg c

(* The three per-chunk stages (garble, re-derive + check, evaluate) are
   embarrassingly parallel — every chunk's DRBG is derived from
   (generation, idx) alone — so one polymorphic map covers them all.
   [domains <= 1] is the exact sequential code path (no pool is spawned);
   with a pool, [Pool.map] deals chunks round-robin across stateless
   workers and results are byte-identical at any domain count. *)
type mapper = { pmap : 'a. int -> (int -> 'a) -> 'a array }

let with_mapper ~domains f =
  if domains <= 1 then f { pmap = (fun n g -> Array.init n g) }
  else
    Pool.with_pool ~domains ~state:(fun _ -> ()) @@ fun pool ->
    f { pmap = (fun n g -> Pool.map pool ~n ~f:(fun i () -> g i)) }

(* Stage timing through the obs span (so `blindbox stats` sees it) with
   the delta mirrored into the per-call [stats] record. *)
let timed span f =
  let s0 = Obs.span_seconds span in
  let r = Obs.time span f in
  (r, Obs.span_seconds span -. s0)

let prepare_internal ?k_rand_receiver ?(generation = "initial") ?(domains = 1)
    ~k ~k_rand ~chunks () =
  Array.iter
    (fun chunk ->
       if String.length chunk <> Tokenizer.token_len then
         invalid_arg "Ruleprep: chunk must be token-sized")
    chunks;
  let c = circuit () in
  let n = Array.length chunks in
  let raw_key = Bbx_dpienc.Dpienc.raw_key_of_secret k in
  let key_bits = Circuit.bits_of_string raw_key in
  with_mapper ~domains @@ fun m ->
  (* Endpoint S garbles; endpoint R's copy is re-derived and checked. *)
  let garblings_s, garble_seconds =
    timed obs_garble (fun () -> m.pmap n (fun i -> garble_for_chunk ~generation ~k_rand i c))
  in
  (* The receiver independently re-derives every circuit from its own copy
     of k_rand; the middlebox accepts only byte-identical garblings (at
     least one endpoint is honest, so agreement implies honesty). *)
  let k_rand_r = Option.value k_rand_receiver ~default:k_rand in
  ignore
    (m.pmap n (fun i ->
         let g_r = fst (garble_for_chunk ~generation ~k_rand:k_rand_r i c) in
         if not (Garble.equal (fst garblings_s.(i)) g_r) then
           invalid_arg "Ruleprep: endpoint garblings disagree (malicious endpoint?)")
      : unit array);
  (* Batched IKNP oblivious transfer for every chunk bit of every circuit:
     the middlebox's choice bits are the chunk bits; the endpoints' message
     pairs are the corresponding input-wire labels.  The flat arrays are
     pre-sized and filled in place — no intermediate per-chunk arrays or
     concat copies proportional to total label bytes. *)
  let msg_first, _ = Aes_circuit.msg_input_range in
  let bits = chunk_bits_per_circuit in
  let messages = Array.make (n * bits) ("", "") in
  let choices = Array.make (n * bits) false in
  for i = 0 to n - 1 do
    let _, secrets = garblings_s.(i) in
    let chunk_bits = Circuit.bits_of_string chunks.(i) in
    let base = i * bits in
    for b = 0 to bits - 1 do
      messages.(base + b) <- Garble.input_label_pair secrets ~wire:(msg_first + b);
      choices.(base + b) <- chunk_bits.(b)
    done
  done;
  let (chunk_labels, ot_bytes), _ =
    timed obs_ot (fun () ->
        if n = 0 then ([||], 0)
        else
          Extension.run
            ~sender_drbg:(Drbg.create (Kdf.derive ~secret:k_rand ~label:"ot-endpoint" 32))
            ~receiver_drbg:
              (Drbg.create (Sha256.digest (String.concat "" (Array.to_list chunks) ^ "mb-ot")))
            ~messages ~choices)
  in
  (* Middlebox evaluation: key labels and zero-pad labels arrive directly
     from the endpoints; chunk labels come from the OT. *)
  let encs, eval_seconds =
    timed obs_eval (fun () ->
        m.pmap n (fun i ->
            let g, secrets = garblings_s.(i) in
            let labels =
              Array.init c.Circuit.n_inputs (fun w ->
                  if w < 128 then Garble.encode_input secrets ~wire:w key_bits.(w)
                  else if w < msg_first + bits then
                    chunk_labels.((i * bits) + (w - msg_first))
                  else Garble.encode_input secrets ~wire:w false)
            in
            Circuit.string_of_bits (Garble.eval c g labels)))
  in
  let circuit_bytes =
    Array.fold_left (fun acc (g, _) -> acc + Garble.size_bytes g) 0 garblings_s
  in
  Obs.add obs_circuits n;
  Obs.add obs_circuit_bytes circuit_bytes;
  Obs.add obs_ot_bytes ot_bytes;
  (encs,
   { circuits = n; circuit_bytes; ot_bytes; garble_seconds; eval_seconds })

let prepare_unchecked ?generation ?domains ~k ~k_rand ~chunks () =
  prepare_internal ?generation ?domains ~k ~k_rand ~chunks ()

(* Test hook for the malicious-endpoint case: endpoints with different
   randomness (i.e. at least one cheating on the agreed seed) must be
   rejected by the middlebox's equality check. *)
let prepare_distrusting ~k ~k_rand_sender ~k_rand_receiver ~chunks =
  prepare_internal ~k_rand_receiver ~k ~k_rand:k_rand_sender ~chunks ()

let verify_signatures ~op ~rg_key ~signatures chunks =
  if Array.length signatures <> Array.length chunks then
    invalid_arg (Printf.sprintf "%s: one signature per chunk required" op);
  Array.iteri
    (fun i chunk ->
       if not (Bbx_sig.Rsa.verify rg_key ~signature:signatures.(i) chunk) then
         invalid_arg (Printf.sprintf "%s: bad RG signature on chunk %d" op i))
    chunks

let prepare ?generation ?domains ~k ~k_rand ~chunks ~signatures ~rg_key () =
  verify_signatures ~op:"Ruleprep.prepare" ~rg_key ~signatures chunks;
  prepare_internal ?generation ?domains ~k ~k_rand ~chunks ()

(* ---------- incremental preparation ---------- *)

let prepared ~chunks ~encs =
  if Array.length chunks <> Array.length encs then
    invalid_arg "Ruleprep.prepared: one encryption per chunk required";
  { chunks; encs; generation = 0 }

let lookup prep =
  let tbl = Hashtbl.create (max 16 (Array.length prep.chunks)) in
  Array.iteri (fun i c -> Hashtbl.replace tbl c prep.encs.(i)) prep.chunks;
  fun chunk -> Hashtbl.find tbl chunk

(* Split an update into (kept chunk/enc pairs, fresh chunks): kept =
   prev minus [remove]; fresh = [add] minus kept, deduplicated with first
   appearance order preserved. *)
let split prev ~add ~remove =
  let removed = Hashtbl.create (max 16 (Array.length remove)) in
  Array.iter (fun c -> Hashtbl.replace removed c ()) remove;
  let kept_chunks = ref [] and kept_encs = ref [] in
  Array.iteri
    (fun i c ->
       if not (Hashtbl.mem removed c) then begin
         kept_chunks := c :: !kept_chunks;
         kept_encs := prev.encs.(i) :: !kept_encs
       end)
    prev.chunks;
  let have = Hashtbl.create 64 in
  List.iter (fun c -> Hashtbl.replace have c ()) !kept_chunks;
  let fresh = ref [] in
  Array.iter
    (fun c ->
       if not (Hashtbl.mem have c) then begin
         Hashtbl.replace have c ();
         fresh := c :: !fresh
       end)
    add;
  ( Array.of_list (List.rev !kept_chunks),
    Array.of_list (List.rev !kept_encs),
    Array.of_list (List.rev !fresh) )

let generation_label g = Printf.sprintf "update-%d" g

let update ?domains ?signatures ?rg_key ~k ~k_rand ~prev ~add ~remove () =
  (match (signatures, rg_key) with
   | Some signatures, Some rg_key ->
     (* signatures cover the RG's announced additions, before dedup *)
     verify_signatures ~op:"Ruleprep.update" ~rg_key ~signatures add
   | None, None -> ()
   | _ -> invalid_arg "Ruleprep.update: signatures and rg_key go together");
  let kept_chunks, kept_encs, fresh = split prev ~add ~remove in
  let generation = prev.generation + 1 in
  let fresh_encs, stats =
    prepare_internal ~generation:(generation_label generation) ?domains ~k ~k_rand
      ~chunks:fresh ()
  in
  ( { chunks = Array.append kept_chunks fresh;
      encs = Array.append kept_encs fresh_encs;
      generation },
    stats )

let update_direct ~enc ~prev ~add ~remove =
  let kept_chunks, kept_encs, fresh = split prev ~add ~remove in
  { chunks = Array.append kept_chunks fresh;
    encs = Array.append kept_encs (Array.map enc fresh);
    generation = prev.generation + 1 }
