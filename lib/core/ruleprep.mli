(** Obfuscated rule encryption (paper §3.3, Fig. 2).

    The middlebox must obtain [AES_k(chunk)] for every rule-keyword chunk
    without learning [k] and without the endpoints learning the chunks:

    + both endpoints garble the AES-128 circuit deterministically from the
      shared seed [k_rand] — one fresh circuit per chunk (garbled-circuit
      security breaks if two inputs are encoded for the same circuit);
    + the middlebox checks the two garblings are byte-identical (at least
      one endpoint is honest, so agreement implies honesty);
    + the endpoints hand over the key-half input labels for [k] directly
      and the padding-zero labels for the low message bits;
    + the middlebox fetches the 64 chunk-bit labels per circuit by IKNP
      oblivious transfer (one batched extension run for the whole
      ruleset);
    + the middlebox evaluates each circuit and decodes [AES_k(chunk)].

    Rule authenticity: RG signs each chunk with {!Bbx_sig.Rsa}; the
    middlebox's signatures are verified against RG's public key before any
    labels are transferred.  Unlike the paper, the check runs outside the
    garbled circuit (DESIGN.md §2, substitution 3).

    {b Parallel setup}: every chunk's garbling DRBG is derived from
    [(generation, chunk index)] alone, so the per-chunk stages (sender
    garbling, receiver re-derivation + equality check, circuit
    evaluation) are embarrassingly parallel.  With [?domains > 1] they
    run on a {!Bbx_exec.Pool} of worker domains and the output is
    byte-identical to the sequential path at any domain count.

    {b Incremental setup}: {!update} re-prepares only the delta of a rule
    update — retained chunks keep their encryptions, fresh chunks are
    garbled under the next generation label (circuits are never reused
    across evaluator inputs, so update randomness never collides with any
    earlier round's). *)

type stats = {
  circuits : int;
  circuit_bytes : int;       (** serialized garbled-circuit bytes shipped *)
  ot_bytes : int;            (** OT transcript bytes *)
  garble_seconds : float;    (** endpoint-side garbling time (one endpoint);
                                 0.0 when observability is disabled *)
  eval_seconds : float;      (** middlebox evaluation time; 0.0 when
                                 observability is disabled *)
}

(** A completed preparation round: the prepared chunk set, each chunk's
    [AES_k(chunk)], and the generation counter namespacing the next
    update's garbling randomness. *)
type prepared = {
  chunks : string array;
  encs : string array;       (** [encs.(i) = AES_k(chunks.(i))] *)
  generation : int;
}

(** [prepare ~k ~k_rand ~chunks ~signatures ~rg_key ()] returns
    [AES_k(chunk)] for every chunk, plus transfer statistics.
    Raises [Invalid_argument] if any signature fails to verify or any
    chunk is not token-sized.  [generation] namespaces the garbling
    randomness: every preparation round (initial setup, each rule update)
    must use a distinct generation, because garbled-circuit security
    forbids evaluating one circuit on two inputs.  [domains] (default 1 =
    fully sequential) runs the per-chunk stages on that many worker
    domains; the output is byte-identical at any count. *)
val prepare :
  ?generation:string ->
  ?domains:int ->
  k:string ->
  k_rand:string ->
  chunks:string array ->
  signatures:string array ->
  rg_key:Bbx_sig.Rsa.public_key ->
  unit ->
  string array * stats

(** [prepare_unchecked ~k ~k_rand ~chunks] — same without RG signatures
    (for benches isolating the crypto cost). *)
val prepare_unchecked :
  ?generation:string -> ?domains:int -> k:string -> k_rand:string ->
  chunks:string array -> unit ->
  string array * stats

(** [prepare_distrusting ~k ~k_rand_sender ~k_rand_receiver ~chunks] runs
    the exchange with each endpoint garbling from its own seed: when the
    seeds differ (a malicious endpoint deviated from the handshake), the
    middlebox's byte-equality check raises [Invalid_argument] — the §3.3
    defence, exposed for failure-injection tests. *)
val prepare_distrusting :
  k:string -> k_rand_sender:string -> k_rand_receiver:string -> chunks:string array ->
  string array * stats

(** [prepared ~chunks ~encs] packages an initial preparation round (e.g.
    the output of {!prepare}) at generation 0, ready for {!update}. *)
val prepared : chunks:string array -> encs:string array -> prepared

(** [lookup prep] — an [enc_chunk] oracle over the prepared set (raises
    [Not_found] on unprepared chunks). *)
val lookup : prepared -> string -> string

(** [update ~k ~k_rand ~prev ~add ~remove ()] applies a rule-update delta
    to a previous preparation: chunks in [remove] are dropped, chunks in
    [add] not already retained are garbled from scratch — under the next
    generation label, so no circuit randomness is ever shared with an
    earlier round — and everything else keeps its existing encryption.
    Returns the new {!prepared} (kept chunks first, fresh appended in
    first-appearance order) and the stats of the delta preparation only
    ([stats.circuits] = number of freshly garbled chunks).  When
    [signatures]/[rg_key] are given (both or neither), the signatures
    cover [add] position-wise and are verified first. *)
val update :
  ?domains:int ->
  ?signatures:string array ->
  ?rg_key:Bbx_sig.Rsa.public_key ->
  k:string ->
  k_rand:string ->
  prev:prepared ->
  add:string array ->
  remove:string array ->
  unit ->
  prepared * stats

(** [update_direct ~enc ~prev ~add ~remove] — the same delta bookkeeping
    with a direct encryption oracle instead of the garbled exchange (the
    {!Session.Direct} trusted-simulation mode).  The generation counter
    still advances, keeping parity with the garbled path. *)
val update_direct :
  enc:(string -> string) -> prev:prepared -> add:string array -> remove:string array ->
  prepared

(** The circuit is built once per process (it does not depend on keys);
    rule preparation uses the tower-field AES circuit (9 000 AND gates,
    ~290 KB garbled under half-gates). *)
val circuit : unit -> Bbx_circuit.Circuit.t
