(** Obfuscated rule encryption (paper §3.3, Fig. 2).

    The middlebox must obtain [AES_k(chunk)] for every rule-keyword chunk
    without learning [k] and without the endpoints learning the chunks:

    + both endpoints garble the AES-128 circuit deterministically from the
      shared seed [k_rand] — one fresh circuit per chunk (garbled-circuit
      security breaks if two inputs are encoded for the same circuit);
    + the middlebox checks the two garblings are byte-identical (at least
      one endpoint is honest, so agreement implies honesty);
    + the endpoints hand over the key-half input labels for [k] directly
      and the padding-zero labels for the low message bits;
    + the middlebox fetches the 64 chunk-bit labels per circuit by IKNP
      oblivious transfer (one batched extension run for the whole
      ruleset);
    + the middlebox evaluates each circuit and decodes [AES_k(chunk)].

    Rule authenticity: RG signs each chunk with {!Bbx_sig.Rsa}; the
    middlebox's signatures are verified against RG's public key before any
    labels are transferred.  Unlike the paper, the check runs outside the
    garbled circuit (DESIGN.md §2, substitution 3). *)

type stats = {
  circuits : int;
  circuit_bytes : int;       (** serialized garbled-circuit bytes shipped *)
  ot_bytes : int;            (** OT transcript bytes *)
  garble_seconds : float;    (** endpoint-side garbling time (one endpoint) *)
  eval_seconds : float;      (** middlebox evaluation time *)
}

(** [prepare ~k ~k_rand ~chunks ~signatures ~rg_key ()] returns
    [AES_k(chunk)] for every chunk, plus transfer statistics.
    Raises [Invalid_argument] if any signature fails to verify or any
    chunk is not token-sized.  [generation] namespaces the garbling
    randomness: every preparation round (initial setup, each rule update)
    must use a distinct generation, because garbled-circuit security
    forbids evaluating one circuit on two inputs. *)
val prepare :
  ?generation:string ->
  k:string ->
  k_rand:string ->
  chunks:string array ->
  signatures:string array ->
  rg_key:Bbx_sig.Rsa.public_key ->
  unit ->
  string array * stats

(** [prepare_unchecked ~k ~k_rand ~chunks] — same without RG signatures
    (for benches isolating the crypto cost). *)
val prepare_unchecked :
  ?generation:string -> k:string -> k_rand:string -> chunks:string array -> unit ->
  string array * stats

(** [prepare_distrusting ~k ~k_rand_sender ~k_rand_receiver ~chunks] runs
    the exchange with each endpoint garbling from its own seed: when the
    seeds differ (a malicious endpoint deviated from the handshake), the
    middlebox's byte-equality check raises [Invalid_argument] — the §3.3
    defence, exposed for failure-injection tests. *)
val prepare_distrusting :
  k:string -> k_rand_sender:string -> k_rand_receiver:string -> chunks:string array ->
  string array * stats

(** The circuit is built once per process (it does not depend on keys);
    rule preparation uses the tower-field AES circuit (9 000 AND gates,
    ~290 KB garbled under half-gates). *)
val circuit : unit -> Bbx_circuit.Circuit.t
