open Bbx_crypto
open Bbx_dpienc
open Bbx_tokenizer
open Bbx_tls
module Obs = Bbx_obs.Obs

(* Connection-lifecycle spans (wall-clock + GC-allocated bytes) and
   traffic counters.  Setup spans separate the handshake from rule
   preparation — under [Garbled] prep the latter is the OT + garbling cost
   the paper's §7.2.2 plots. *)
let obs_handshake = Obs.span "bbx_session_handshake"
let obs_rule_prep = Obs.span "bbx_session_rule_prep"
let obs_setup = Obs.span "bbx_session_setup"
let obs_deliver = Obs.span "bbx_session_deliver"
let obs_sends = Obs.counter "bbx_session_sends_total"
let obs_payload_bytes = Obs.counter "bbx_session_payload_bytes_total"
let obs_verdicts = Obs.counter "bbx_session_verdicts_total"
let obs_blocked = Obs.counter "bbx_session_blocked_total"
let obs_evasions = Obs.counter "bbx_session_evasions_total"
let obs_resets = Obs.counter "bbx_session_salt_resets_total"

let obs_payload_size =
  Obs.histogram "bbx_session_payload_bytes"
    ~buckets:[| 64; 256; 1024; 1500; 4096; 16384; 65536; 262144 |]

let obs_tokens_per_send =
  Obs.histogram "bbx_session_tokens_per_send"
    ~buckets:[| 8; 32; 128; 512; 1024; 4096; 16384 |]

type tokenization = Window | Delimiter

type rule_prep_mode = Garbled | Direct

type config = {
  mode : Dpienc.mode;
  tokenization : tokenization;
  rule_prep : rule_prep_mode;
  salt0 : int;
  reset_period : int;
  setup_domains : int;
  detect_index : Bbx_detect.Detect.index_backend;
  tier : Bbx_rules.Classify.protocol_class;
  tier_budget : Bbx_mbox.Engine.budget;
  aes_kernel : Dpienc.aes_kernel;
}

let default_config =
  { mode = Dpienc.Exact; tokenization = Delimiter; rule_prep = Direct;
    salt0 = 0; reset_period = 1 lsl 20; setup_domains = 1;
    detect_index = Bbx_detect.Detect.Hash;
    tier = Bbx_rules.Classify.Protocol_III;
    tier_budget = Bbx_mbox.Engine.default_budget;
    aes_kernel = Dpienc.Bitsliced }

type setup_stats = {
  chunk_count : int;
  rule_prep_stats : Ruleprep.stats option;
  setup_seconds : float;
}

exception Evasion_detected of string
exception Connection_blocked

type t = {
  config : config;
  keys : Handshake.keys;
  (* sender side *)
  writer : Record.t;
  dpi_sender : Dpienc.sender;
  mutable sender_stream_off : int;
  mutable bytes_since_reset : int;
  (* middlebox *)
  engine : Bbx_mbox.Engine.t;       (* retains + decrypts the record stream
                                       itself (Engine.record_stream) *)
  (* receiver side *)
  reader : Record.t;
  dpi_mirror : Dpienc.sender;       (* for token validation, §3.4 *)
  mutable receiver_stream_off : int;
  reported : (int, unit) Hashtbl.t; (* rule indices already reported in a delivery *)
  mutable is_blocked : bool;        (* a drop-action rule fired *)
  dir : string;                     (* record-layer direction label *)
  mutable prep : Ruleprep.prepared; (* prepared chunk set: resumption tickets +
                                       incremental updates (generation counter) *)
  rg : Bbx_sig.Rsa.keypair option;  (* retained for incremental rule prep *)
}

let direction = "sender->receiver"

(* Build the in-process trio (S, MB, R) from agreed keys and prepared
   encrypted rules.  [label] salts the record-layer direction so resumed
   connections never reuse a keystream. *)
let make_session ?rg config keys ~rules ~prep ~label =
  let enc_chunk = Ruleprep.lookup prep in
  let dir = direction ^ label in
  let kernel = config.aes_kernel in
  let engine =
    Bbx_mbox.Engine.create ~index:config.detect_index ~tier:config.tier
      ~budget:config.tier_budget ~direction:dir ~kernel ~mode:config.mode
      ~salt0:config.salt0 ~rules ~enc_chunk ()
  in
  { config;
    keys;
    writer = Record.create ~kernel ~key:keys.Handshake.k_ssl ~direction:dir ();
    dpi_sender =
      Dpienc.sender_create ~kernel config.mode
        (Dpienc.key_of_secret keys.Handshake.k) ~salt0:config.salt0;
    sender_stream_off = 0;
    bytes_since_reset = 0;
    engine;
    reader = Record.create ~kernel ~key:keys.Handshake.k_ssl ~direction:dir ();
    dpi_mirror =
      Dpienc.sender_create ~kernel config.mode
        (Dpienc.key_of_secret keys.Handshake.k) ~salt0:config.salt0;
    receiver_stream_off = 0;
    reported = Hashtbl.create 8;
    is_blocked = false;
    dir;
    prep;
    rg }

let dpienc_tokenization config =
  match config.tokenization with
  | Window -> Dpienc.Window
  | Delimiter -> Dpienc.Delimiter { short_units = false }

(* Size hint for the wire buffer: exact for window tokenization, a
   text-typical guess for delimiter (Buffer grows as needed either way). *)
let wire_buf_estimate config payload =
  let per =
    match config.mode with
    | Dpienc.Exact -> Dpienc.exact_record_bytes
    | Dpienc.Probable -> Dpienc.probable_record_bytes
  in
  match config.tokenization with
  | Window -> per * (max 1 (String.length payload - Tokenizer.token_len + 1))
  | Delimiter -> per * (max 16 (String.length payload / 4))

(* Handshake between the two endpoints; the middlebox observes only the
   public key shares. *)
let run_handshake seed =
  Obs.span_enter obs_handshake;
  let st, client_share = Handshake.initiate (Drbg.create (seed ^ "/client")) in
  let keys_r, server_share =
    Handshake.respond (Drbg.create (seed ^ "/server")) ~peer_share:client_share
  in
  let keys = Handshake.complete st ~peer_share:server_share in
  assert (keys = keys_r);
  Obs.span_exit obs_handshake;
  keys

(* Shared rule preparation used by [establish], [Duplex.establish] and
   [Fleet.establish].  [config.setup_domains > 1] runs the garbled
   stages on a worker-domain pool ({!Ruleprep}); the prepared output is
   byte-identical at any domain count. *)
let prepare_rules config ?rg keys rules =
  Obs.time obs_rule_prep @@ fun () ->
  let chunks = Bbx_mbox.Engine.distinct_chunks rules in
  let encs, rule_prep_stats =
    match config.rule_prep with
    | Direct ->
      let key = Dpienc.key_of_secret keys.Handshake.k in
      let encs =
        match config.aes_kernel with
        | Dpienc.Scalar -> Array.map (Dpienc.token_enc key) chunks
        | Dpienc.Bitsliced -> Dpienc.token_enc_batch key chunks
      in
      (encs, None)
    | Garbled ->
      let encs, stats =
        match rg with
        | None ->
          Ruleprep.prepare_unchecked ~domains:config.setup_domains
            ~k:keys.Handshake.k ~k_rand:keys.Handshake.k_rand ~chunks ()
        | Some (kp : Bbx_sig.Rsa.keypair) ->
          let signatures = Array.map (Bbx_sig.Rsa.sign kp.Bbx_sig.Rsa.private_) chunks in
          Ruleprep.prepare ~domains:config.setup_domains
            ~k:keys.Handshake.k ~k_rand:keys.Handshake.k_rand ~chunks
            ~signatures ~rg_key:kp.Bbx_sig.Rsa.public ()
      in
      (encs, Some stats)
  in
  (Ruleprep.prepared ~chunks ~encs, rule_prep_stats)

let establish ?(config = default_config) ?(seed = "blindbox-session") ?rg ~rules () =
  Obs.span_enter obs_setup;
  let t0 = Unix.gettimeofday () in
  let keys = run_handshake seed in
  let prep, rule_prep_stats = prepare_rules config ?rg keys rules in
  let t = make_session ?rg config keys ~rules ~prep ~label:"" in
  Obs.span_exit obs_setup;
  ( t,
    { chunk_count = Array.length prep.Ruleprep.chunks;
      rule_prep_stats;
      setup_seconds = Unix.gettimeofday () -. t0 } )

type ticket = {
  tk_keys : Handshake.keys;
  tk_config : config;
  tk_prep : Ruleprep.prepared;
  mutable tk_uses : int;
}

let resumption_ticket t =
  { tk_keys = t.keys;
    tk_config = t.config;
    tk_prep = t.prep;
    tk_uses = 0 }

let resume ?config ticket ~rules () =
  let config = Option.value config ~default:ticket.tk_config in
  let chunks = Bbx_mbox.Engine.distinct_chunks rules in
  if chunks <> ticket.tk_prep.Ruleprep.chunks then
    invalid_arg "Session.resume: ruleset differs from the ticket's";
  ticket.tk_uses <- ticket.tk_uses + 1;
  make_session config ticket.tk_keys ~rules ~prep:ticket.tk_prep
    ~label:(Printf.sprintf "#resume-%d" ticket.tk_uses)

type delivery = {
  plaintext : string;
  verdicts : Bbx_mbox.Engine.verdict list;
  record_bytes : int;
  token_bytes : int;
  token_count : int;
}

let k_ssl_opt t =
  match t.config.mode with
  | Dpienc.Probable -> Some t.keys.Handshake.k_ssl
  | Dpienc.Exact -> None

let mb_recovered_key t = Bbx_mbox.Engine.recovered_key t.engine

let mb_decrypted_stream t = Bbx_mbox.Engine.decrypted_stream t.engine

let mb_keyword_hits t = Bbx_mbox.Engine.keyword_hits t.engine

let mb_verdicts t = Bbx_mbox.Engine.verdicts t.engine

let mb_escalation t = Bbx_mbox.Engine.escalation t.engine

(* Sender-side encryption of one payload: SSL record + encrypted tokens,
   the latter tokenized+encrypted+serialised in one streaming pass
   (Dpienc.sender_encrypt_into) — no token or enc_token lists are built.
   A one-byte frame tag inside the record marks whether the payload was
   tokenized ('T') or sent as binary without tokens ('B', the paper's §3
   optimisation for images/video); the receiver validates accordingly. *)
let sender_encrypt t ~tokenized payload =
  let tag = if tokenized then "T" else "B" in
  let record = Record.seal t.writer (tag ^ payload) in
  if tokenized then begin
    let buf = Buffer.create (wire_buf_estimate t.config payload) in
    let count =
      Dpienc.sender_encrypt_into t.dpi_sender ?k_ssl:(k_ssl_opt t)
        ~base:t.sender_stream_off ~tokenization:(dpienc_tokenization t.config)
        payload buf
    in
    t.sender_stream_off <- t.sender_stream_off + String.length payload;
    (record, Buffer.contents buf, count)
  end
  else (record, "", 0)

(* Receiver-side §3.4 validation: recompute the wire-encoded token stream
   from the decrypted plaintext and compare bytes with what the middlebox
   forwarded (the encoding is injective, so byte equality is exactly
   token-stream equality). *)
let receiver_validate t ~tokenized plaintext forwarded_wire =
  let expected =
    if tokenized then begin
      let buf = Buffer.create (String.length forwarded_wire) in
      ignore
        (Dpienc.sender_encrypt_into t.dpi_mirror ?k_ssl:(k_ssl_opt t)
           ~base:t.receiver_stream_off ~tokenization:(dpienc_tokenization t.config)
           plaintext buf : int);
      t.receiver_stream_off <- t.receiver_stream_off + String.length plaintext;
      Buffer.contents buf
    end
    else ""
  in
  if not (String.equal expected forwarded_wire) then begin
    Obs.incr obs_evasions;
    raise (Evasion_detected "token stream does not match the decrypted payload")
  end

let maybe_reset t payload_len =
  t.bytes_since_reset <- t.bytes_since_reset + payload_len;
  if t.config.reset_period > 0 && t.bytes_since_reset >= t.config.reset_period then begin
    t.bytes_since_reset <- 0;
    Obs.incr obs_resets;
    let new_salt0 = Dpienc.sender_reset t.dpi_sender in
    (* announced to MB and mirrored by the receiver *)
    Bbx_mbox.Engine.reset t.engine ~salt0:new_salt0;
    let mirror_salt0 = Dpienc.sender_reset t.dpi_mirror in
    assert (mirror_salt0 = new_salt0)
  end

let blocked t = t.is_blocked

let deliver t ~record ~wire ~token_count =
  if t.is_blocked then raise Connection_blocked;
  Obs.span_enter obs_deliver;
  (* middlebox: retain the SSL record (for probable-cause escalation),
     inspect the token stream straight off the wire bytes, forward both.
     The record goes first: the escalation pump decrypts strictly in
     stream order. *)
  Bbx_mbox.Engine.record_stream t.engine record;
  let _ : int = Bbx_mbox.Engine.process_wire t.engine wire in
  (* receiver *)
  let framed = Record.open_ t.reader record in
  if String.length framed = 0 then raise (Evasion_detected "empty frame");
  let tokenized =
    match framed.[0] with
    | 'T' -> true
    | 'B' -> false
    | _ -> raise (Evasion_detected "bad frame tag")
  in
  let plaintext = String.sub framed 1 (String.length framed - 1) in
  receiver_validate t ~tokenized plaintext wire;
  if not tokenized && wire <> "" then
    raise (Evasion_detected "tokens attached to a binary frame");
  let all = Bbx_mbox.Engine.verdicts t.engine in
  (* report each rule once, on the send that first triggered it *)
  let fresh =
    List.filter
      (fun v -> not (Hashtbl.mem t.reported v.Bbx_mbox.Engine.rule_idx))
      all
  in
  List.iter (fun v -> Hashtbl.replace t.reported v.Bbx_mbox.Engine.rule_idx ()) fresh;
  (* budget-exceeded is a flag, not a match: it never blocks *)
  if List.exists
      (fun v ->
         v.Bbx_mbox.Engine.rule.Bbx_rules.Rule.action = Bbx_rules.Rule.Drop
         && v.Bbx_mbox.Engine.detail <> `Budget_exceeded)
      all
  then begin
    if not t.is_blocked then Obs.incr obs_blocked;
    t.is_blocked <- true
  end;
  maybe_reset t (String.length plaintext);
  Obs.incr obs_sends;
  Obs.add obs_payload_bytes (String.length plaintext);
  Obs.add obs_verdicts (List.length fresh);
  Obs.observe obs_payload_size (String.length plaintext);
  Obs.observe obs_tokens_per_send token_count;
  Obs.span_exit obs_deliver;
  { plaintext;
    verdicts = fresh;
    record_bytes = String.length record;
    token_bytes = String.length wire;
    token_count }

(* Rule update on a live connection (§2.3: RG ships new signatures to its
   middlebox customers): rules named by [remove_sids] are retired, [rules]
   are added, and only chunks not already prepared pay the
   obfuscated-rule-encryption cost ({!Ruleprep.update} garbles the delta
   under a fresh generation). *)
let update_rules t ?(remove_sids = []) rules =
  (* 1. the middlebox drops the retired rules; chunks no retained rule
     needs leave the detection tree, and the reported-rule set is
     remapped across the rule-index shift *)
  let removed_chunks, remap = Bbx_mbox.Engine.remove_rules t.engine ~sids:remove_sids in
  if remove_sids <> [] then begin
    let old_idxs = Hashtbl.fold (fun idx () acc -> idx :: acc) t.reported [] in
    Hashtbl.reset t.reported;
    List.iter
      (fun idx ->
         match remap.(idx) with
         | -1 -> ()
         | idx' -> Hashtbl.replace t.reported idx' ())
      old_idxs
  end;
  (* 2. the endpoints re-prepare only the delta *)
  let add_chunks = Bbx_mbox.Engine.distinct_chunks rules in
  let remove = Array.of_list removed_chunks in
  let prep, stats =
    match t.config.rule_prep with
    | Direct ->
      let key = Dpienc.key_of_secret t.keys.Handshake.k in
      (Ruleprep.update_direct ~enc:(Dpienc.token_enc key) ~prev:t.prep
         ~add:add_chunks ~remove,
       None)
    | Garbled ->
      let signatures, rg_key =
        match t.rg with
        | None -> (None, None)
        | Some kp ->
          ( Some (Array.map (Bbx_sig.Rsa.sign kp.Bbx_sig.Rsa.private_) add_chunks),
            Some kp.Bbx_sig.Rsa.public )
      in
      let prep, st =
        Ruleprep.update ~domains:t.config.setup_domains ?signatures ?rg_key
          ~k:t.keys.Handshake.k ~k_rand:t.keys.Handshake.k_rand ~prev:t.prep
          ~add:add_chunks ~remove ()
      in
      (prep, Some st)
  in
  t.prep <- prep;
  (* 3. the middlebox extends its tree with the new rules' fresh chunks *)
  let added =
    Bbx_mbox.Engine.add_rules t.engine ~rules ~enc_chunk:(Ruleprep.lookup prep)
  in
  (* A rule update forces a salt reset: the sender may already have
     emitted the new keywords' token values under earlier salts, and the
     middlebox has no way to know their counts (removal additionally
     rebuilds the tree, restarting retained counters).  Resetting puts
     every counter — old and new — back in lock-step. *)
  t.bytes_since_reset <- 0;
  let new_salt0 = Dpienc.sender_reset t.dpi_sender in
  Bbx_mbox.Engine.reset t.engine ~salt0:new_salt0;
  let mirror_salt0 = Dpienc.sender_reset t.dpi_mirror in
  assert (mirror_salt0 = new_salt0);
  (added, stats)

let add_rules t rules = update_rules t rules

let send t payload =
  let record, wire, token_count = sender_encrypt t ~tokenized:true payload in
  deliver t ~record ~wire ~token_count

let send_binary t payload =
  let record, wire, token_count = sender_encrypt t ~tokenized:false payload in
  deliver t ~record ~wire ~token_count

let send_evading t payload ~drop_tokens =
  let record, wire, _ = sender_encrypt t ~tokenized:true payload in
  (* the cheat needs token granularity: decode, drop, re-encode *)
  let tokens = Dpienc.decode_tokens wire in
  let tokens = List.filteri (fun i _ -> i >= drop_tokens) tokens in
  deliver t ~record ~wire:(Dpienc.encode_tokens tokens)
    ~token_count:(List.length tokens)


(* ---------- bidirectional connections ---------- *)

module Duplex = struct
  type duplex = {
    c2s : t;  (* client -> server: requests *)
    s2c : t;  (* server -> client: responses *)
  }

  let rules_for direction rules =
    List.filter
      (fun r ->
         match Bbx_rules.Rule.flow_direction r with
         | `Any -> true
         | (`From_client | `From_server) as d -> d = direction)
      rules

  let establish ?(config = default_config) ?(seed = "blindbox-duplex") ?rg ~rules () =
    let t0 = Unix.gettimeofday () in
    let keys = run_handshake seed in
    (* one rule preparation covers the chunks of the whole ruleset; each
       direction's engine then loads only the rules that apply to it *)
    let prep, rule_prep_stats = prepare_rules config ?rg keys rules in
    let mk direction label =
      make_session ?rg config keys ~rules:(rules_for direction rules) ~prep ~label
    in
    ( { c2s = mk `From_client "/c2s"; s2c = mk `From_server "/s2c" },
      { chunk_count = Array.length prep.Ruleprep.chunks;
        rule_prep_stats;
        setup_seconds = Unix.gettimeofday () -. t0 } )

  let client_send t payload =
    if t.s2c.is_blocked then raise Connection_blocked;
    send t.c2s payload

  let server_send t payload =
    if t.c2s.is_blocked then raise Connection_blocked;
    send t.s2c payload

  let blocked t = t.c2s.is_blocked || t.s2c.is_blocked
end


(* ---------- many connections through a sharded middlebox ---------- *)

module Fleet = struct
  (* A fleet is one tenant: ONE handshake agrees the tenant keys, so one
     rule preparation (AES_k over the distinct chunks) and one expanded
     detection keyset are valid for every connection — registration cost
     per connection is O(1) in ruleset size instead of re-running the
     handshake + prep per connection.  Each connection still gets its own
     record-layer key, derived as KDF(k_ssl, "fleet-conn-<i>"), so sealed
     streams (and the key probable cause recovers) stay per-connection.

     Privacy trade-off, documented: sharing the token key [k] across a
     tenant's connections means identical keywords produce correlatable
     token values {e across} that tenant's flows (within a salt window),
     not just within one flow.  Connections of different tenants (fleets)
     remain uncorrelatable, as do record streams. *)

  (* Sender-side state for one monitored connection — deliberately flat
     (six fields, no per-connection closures, keys or rule tables).  The
     middlebox half (engine, salt counters, block flag) lives inside the
     shard pool, on whichever worker domain owns the connection. *)
  type conn = {
    fc_id : int;
    fc_k_ssl : string;                    (* this connection's record key *)
    fc_sender : Dpienc.sender;
    fc_writer : Record.t option;          (* record layer, when the middlebox
                                             tier retains the stream *)
    mutable fc_off : int;
    mutable fc_bytes_since_reset : int;
  }

  type fleet = {
    fl_config : config;
    fl_pool : Bbx_mbox.Shardpool.t;
    fl_conns : (int, conn) Hashtbl.t;
    fl_keys : Handshake.keys;                  (* tenant keys (one handshake) *)
    fl_key : Dpienc.key;                       (* expanded token key, shared *)
    mutable fl_rules : Bbx_rules.Rule.t list;  (* current fleet-wide ruleset *)
    mutable fl_prep : Ruleprep.prepared;       (* ONE shared preparation *)
    mutable fl_enc : string -> string;         (* shared read-only chunk oracle *)
    mutable fl_keyset : Bbx_detect.Detect.keyset; (* shared expanded AES keys *)
    mutable fl_prefilter : Bbx_mbox.Engine.prefilter_prep;
    (* shared Protocol III prefilter automaton (~2 KiB per trie node —
       the dominant per-connection structure when not shared) *)
  }

  let conn_k_ssl keys i =
    Kdf.derive ~secret:keys.Handshake.k_ssl
      ~label:(Printf.sprintf "fleet-conn-%d" i) 16

  let make_conn t i =
    let config = t.fl_config in
    let ship_records =
      config.mode = Dpienc.Probable
      && Bbx_rules.Classify.rank config.tier >= 3
    in
    let k_ssl = conn_k_ssl t.fl_keys i in
    { fc_id = i;
      fc_k_ssl = k_ssl;
      fc_sender =
        Dpienc.sender_create ~kernel:config.aes_kernel config.mode t.fl_key
          ~salt0:config.salt0;
      fc_writer =
        (if ship_records then
           Some (Record.create ~kernel:config.aes_kernel ~key:k_ssl ~direction ())
         else None);
      fc_off = 0;
      fc_bytes_since_reset = 0 }

  let register_conn t i =
    let c = make_conn t i in
    (* The shared prep/keyset are immutable after publication, which is
       what makes handing them to every worker domain safe; the engine
       copies-on-write if a later rule update must extend them. *)
    Bbx_mbox.Shardpool.register t.fl_pool ~direction
      ~prepared:(t.fl_prep.Ruleprep.chunks, t.fl_prep.Ruleprep.encs)
      ~keys:t.fl_keyset ~prefilter:t.fl_prefilter ~conn_id:i
      ~salt0:t.fl_config.salt0 ~enc_chunk:t.fl_enc;
    Hashtbl.add t.fl_conns i c

  let establish ?(config = default_config) ?(seed = "blindbox-fleet") ?domains
      ~conns ~rules () =
    if conns < 1 then invalid_arg "Fleet.establish: conns must be >= 1";
    Obs.span_enter obs_setup;
    let pool =
      Bbx_mbox.Shardpool.create ?domains ~index:config.detect_index
        ~tier:config.tier ~budget:config.tier_budget ~kernel:config.aes_kernel
        ~mode:config.mode ~rules ()
    in
    let t =
      try
        (* one handshake, one rule preparation for the whole fleet — the
           [bbx_session_rule_prep] span fires exactly once here no matter
           how many connections follow (the O(1)-setup gate in
           bench/fleet.ml counts it) *)
        let keys = run_handshake seed in
        let prep, _ = prepare_rules config keys rules in
        let t =
          { fl_config = config; fl_pool = pool; fl_conns = Hashtbl.create conns;
            fl_keys = keys;
            fl_key = Dpienc.key_of_secret keys.Handshake.k;
            fl_rules = rules;
            fl_prep = prep;
            fl_enc = Ruleprep.lookup prep;
            fl_keyset = Bbx_detect.Detect.keyset prep.Ruleprep.encs;
            fl_prefilter = Bbx_mbox.Engine.prepare_prefilter rules }
        in
        for i = 0 to conns - 1 do register_conn t i done;
        t
      with e ->
        Bbx_mbox.Shardpool.shutdown pool;
        raise e
    in
    Obs.span_exit obs_setup;
    t

  let get t conn =
    match Hashtbl.find_opt t.fl_conns conn with
    | Some c -> c
    | None -> invalid_arg (Printf.sprintf "Fleet: unknown connection %d" conn)

  let submit t ~conn payload =
    let c = get t conn in
    let buf = Buffer.create (wire_buf_estimate t.fl_config payload) in
    let k_ssl =
      match t.fl_config.mode with
      | Dpienc.Probable -> Some c.fc_k_ssl
      | Dpienc.Exact -> None
    in
    ignore
      (Dpienc.sender_encrypt_into c.fc_sender ?k_ssl ~base:c.fc_off
         ~tokenization:(dpienc_tokenization t.fl_config) payload buf : int);
    c.fc_off <- c.fc_off + String.length payload;
    Obs.incr obs_sends;
    Obs.add obs_payload_bytes (String.length payload);
    (* Record first, tokens second: both ride the same per-connection FIFO
       mailbox, and the escalation pump decrypts in stream order. *)
    (match c.fc_writer with
     | Some w ->
       Bbx_mbox.Shardpool.record_stream t.fl_pool ~conn_id:conn
         (Record.seal w ("T" ^ payload))
     | None -> ());
    let seq = Bbx_mbox.Shardpool.submit t.fl_pool ~conn_id:conn (Buffer.contents buf) in
    (* Salt resets ride the same mailbox as deliveries, so the engine's
       counters move exactly when the sender's do. *)
    c.fc_bytes_since_reset <- c.fc_bytes_since_reset + String.length payload;
    if t.fl_config.reset_period > 0
       && c.fc_bytes_since_reset >= t.fl_config.reset_period
    then begin
      c.fc_bytes_since_reset <- 0;
      Obs.incr obs_resets;
      let salt0 = Dpienc.sender_reset c.fc_sender in
      Bbx_mbox.Shardpool.reset_conn t.fl_pool ~conn_id:conn ~salt0
    end;
    seq

  (* Fleet-wide rule update: because the tenant shares one key, the delta
     is prepared ONCE (one [Ruleprep.update] under the tenant keys, one
     [bbx_session_rule_prep] span) and the resulting oracle is shipped to
     every connection through its shard mailbox.  The update message and
     the salt reset that follows ride the same per-connection FIFO as
     deliveries, so the engine's counters move exactly when the sender's
     do. *)
  let update_rules t ?(remove_sids = []) add =
    let keep r =
      match r.Bbx_rules.Rule.sid with
      | Some s -> not (List.mem s remove_sids)
      | None -> true
    in
    let new_rules = List.filter keep t.fl_rules @ add in
    let old_needed = Bbx_mbox.Engine.distinct_chunks t.fl_rules in
    let new_needed = Bbx_mbox.Engine.distinct_chunks new_rules in
    let still = Hashtbl.create (max 16 (Array.length new_needed)) in
    Array.iter (fun c -> Hashtbl.replace still c ()) new_needed;
    let remove =
      Array.of_list
        (List.filter (fun c -> not (Hashtbl.mem still c)) (Array.to_list old_needed))
    in
    let prep =
      Obs.time obs_rule_prep @@ fun () ->
      match t.fl_config.rule_prep with
      | Direct ->
        let key = Dpienc.key_of_secret t.fl_keys.Handshake.k in
        Ruleprep.update_direct ~enc:(Dpienc.token_enc key) ~prev:t.fl_prep
          ~add:new_needed ~remove
      | Garbled ->
        fst
          (Ruleprep.update ~domains:t.fl_config.setup_domains
             ~k:t.fl_keys.Handshake.k ~k_rand:t.fl_keys.Handshake.k_rand
             ~prev:t.fl_prep ~add:new_needed ~remove ())
    in
    t.fl_prep <- prep;
    t.fl_enc <- Ruleprep.lookup prep;
    t.fl_keyset <- Bbx_detect.Detect.keyset prep.Ruleprep.encs;
    t.fl_prefilter <- Bbx_mbox.Engine.prepare_prefilter new_rules;
    Hashtbl.iter
      (fun conn_id c ->
         Bbx_mbox.Shardpool.update_rules ~prefilter:t.fl_prefilter t.fl_pool
           ~conn_id ~remove_sids ~add ~rules:new_rules ~enc_chunk:t.fl_enc;
         (* forced salt reset, as after any rule update (see [update_rules]
            on a single session) *)
         c.fc_bytes_since_reset <- 0;
         Obs.incr obs_resets;
         let salt0 = Dpienc.sender_reset c.fc_sender in
         Bbx_mbox.Shardpool.reset_conn t.fl_pool ~conn_id ~salt0)
      t.fl_conns;
    t.fl_rules <- new_rules

  let drain t ~f = Bbx_mbox.Shardpool.drain t.fl_pool ~f

  (* Single-connection teardown: sender state and middlebox state both go
     (idempotent, like {!Bbx_mbox.Shardpool.unregister}).  The shared
     prep/keyset stay — they belong to the fleet, not the connection. *)
  let remove t ~conn =
    if Hashtbl.mem t.fl_conns conn then begin
      Hashtbl.remove t.fl_conns conn;
      Bbx_mbox.Shardpool.unregister t.fl_pool ~conn_id:conn
    end

  let migrate t ~conn ~shard =
    ignore (get t conn : conn);
    Bbx_mbox.Shardpool.migrate t.fl_pool ~conn_id:conn ~shard

  let conn_shard t ~conn = Bbx_mbox.Shardpool.conn_shard t.fl_pool ~conn_id:conn

  let rebalance t = Bbx_mbox.Shardpool.rebalance t.fl_pool

  let conn_bytes t = Bbx_mbox.Shardpool.footprint_bytes t.fl_pool

  let blocked t ~conn = Bbx_mbox.Shardpool.is_blocked t.fl_pool ~conn_id:conn

  let stats t = Bbx_mbox.Shardpool.stats t.fl_pool

  let flow_stats t ~conn = Bbx_mbox.Shardpool.flow_stats t.fl_pool ~conn_id:conn

  let domains t = Bbx_mbox.Shardpool.domains t.fl_pool

  let shutdown t = Bbx_mbox.Shardpool.shutdown t.fl_pool

  let with_fleet ?config ?seed ?domains ~conns ~rules f =
    let fleet = establish ?config ?seed ?domains ~conns ~rules () in
    Fun.protect ~finally:(fun () -> shutdown fleet) (fun () -> f fleet)
end
