open Bbx_crypto
open Bbx_dpienc
open Bbx_tokenizer
open Bbx_tls

type tokenization = Window | Delimiter

type rule_prep_mode = Garbled | Direct

type config = {
  mode : Dpienc.mode;
  tokenization : tokenization;
  rule_prep : rule_prep_mode;
  salt0 : int;
  reset_period : int;
}

let default_config =
  { mode = Dpienc.Exact; tokenization = Delimiter; rule_prep = Direct;
    salt0 = 0; reset_period = 1 lsl 20 }

type setup_stats = {
  chunk_count : int;
  rule_prep_stats : Ruleprep.stats option;
  setup_seconds : float;
}

exception Evasion_detected of string
exception Connection_blocked

type t = {
  config : config;
  keys : Handshake.keys;
  (* sender side *)
  writer : Record.t;
  dpi_sender : Dpienc.sender;
  mutable sender_stream_off : int;
  mutable bytes_since_reset : int;
  (* middlebox *)
  engine : Bbx_mbox.Engine.t;
  mutable mb_records : string list; (* newest first *)
  (* receiver side *)
  reader : Record.t;
  dpi_mirror : Dpienc.sender;       (* for token validation, §3.4 *)
  mutable receiver_stream_off : int;
  mutable reported : int list;      (* rule indices already reported in a delivery *)
  mutable is_blocked : bool;        (* a drop-action rule fired *)
  dir : string;                     (* record-layer direction label *)
  mutable chunks_cache : string array; (* for resumption tickets *)
  mutable encs_cache : string array;
  rg : Bbx_sig.Rsa.keypair option;  (* retained for incremental rule prep *)
  mutable rule_generation : int;    (* counts rule updates (fresh garbling namespace) *)
}

let direction = "sender->receiver"

(* Build the in-process trio (S, MB, R) from agreed keys and prepared
   encrypted rules.  [label] salts the record-layer direction so resumed
   connections never reuse a keystream. *)
let make_session ?rg config keys ~rules ~chunks ~encs ~label =
  let enc_chunk =
    let tbl = Hashtbl.create (Array.length chunks) in
    Array.iteri (fun i c -> Hashtbl.replace tbl c encs.(i)) chunks;
    fun chunk -> Hashtbl.find tbl chunk
  in
  let engine =
    Bbx_mbox.Engine.create ~mode:config.mode ~salt0:config.salt0 ~rules ~enc_chunk
  in
  let dir = direction ^ label in
  { config;
    keys;
    writer = Record.create ~key:keys.Handshake.k_ssl ~direction:dir;
    dpi_sender =
      Dpienc.sender_create config.mode (Dpienc.key_of_secret keys.Handshake.k)
        ~salt0:config.salt0;
    sender_stream_off = 0;
    bytes_since_reset = 0;
    engine;
    mb_records = [];
    reader = Record.create ~key:keys.Handshake.k_ssl ~direction:dir;
    dpi_mirror =
      Dpienc.sender_create config.mode (Dpienc.key_of_secret keys.Handshake.k)
        ~salt0:config.salt0;
    receiver_stream_off = 0;
    reported = [];
    is_blocked = false;
    dir;
    chunks_cache = chunks;
    encs_cache = encs;
    rg;
    rule_generation = 0 }

let tokenize config ~base payload =
  let toks =
    match config.tokenization with
    | Window -> Tokenizer.window payload
    | Delimiter -> Tokenizer.delimiter payload
  in
  List.map (fun tok -> { tok with Tokenizer.offset = tok.Tokenizer.offset + base }) toks

(* Handshake between the two endpoints; the middlebox observes only the
   public key shares. *)
let run_handshake seed =
  let st, client_share = Handshake.initiate (Drbg.create (seed ^ "/client")) in
  let keys_r, server_share =
    Handshake.respond (Drbg.create (seed ^ "/server")) ~peer_share:client_share
  in
  let keys = Handshake.complete st ~peer_share:server_share in
  assert (keys = keys_r);
  keys

(* Shared rule preparation used by [establish] and [Duplex.establish]. *)
let prepare_rules config ?rg keys rules =
  let chunks = Bbx_mbox.Engine.distinct_chunks rules in
  let encs, rule_prep_stats =
    match config.rule_prep with
    | Direct ->
      let key = Dpienc.key_of_secret keys.Handshake.k in
      (Array.map (Dpienc.token_enc key) chunks, None)
    | Garbled ->
      let encs, stats =
        match rg with
        | None ->
          Ruleprep.prepare_unchecked ~k:keys.Handshake.k ~k_rand:keys.Handshake.k_rand ~chunks ()
        | Some (kp : Bbx_sig.Rsa.keypair) ->
          let signatures = Array.map (Bbx_sig.Rsa.sign kp.Bbx_sig.Rsa.private_) chunks in
          Ruleprep.prepare ~k:keys.Handshake.k ~k_rand:keys.Handshake.k_rand ~chunks
            ~signatures ~rg_key:kp.Bbx_sig.Rsa.public ()
      in
      (encs, Some stats)
  in
  (chunks, encs, rule_prep_stats)

let establish ?(config = default_config) ?(seed = "blindbox-session") ?rg ~rules () =
  let t0 = Unix.gettimeofday () in
  let keys = run_handshake seed in
  let chunks, encs, rule_prep_stats = prepare_rules config ?rg keys rules in
  let t = make_session ?rg config keys ~rules ~chunks ~encs ~label:"" in
  ( t,
    { chunk_count = Array.length chunks;
      rule_prep_stats;
      setup_seconds = Unix.gettimeofday () -. t0 } )

type ticket = {
  tk_keys : Handshake.keys;
  tk_config : config;
  tk_chunks : string array;
  tk_encs : string array;
  mutable tk_uses : int;
}

let resumption_ticket t =
  { tk_keys = t.keys;
    tk_config = t.config;
    tk_chunks = t.chunks_cache;
    tk_encs = t.encs_cache;
    tk_uses = 0 }

let resume ?config ticket ~rules () =
  let config = Option.value config ~default:ticket.tk_config in
  let chunks = Bbx_mbox.Engine.distinct_chunks rules in
  if chunks <> ticket.tk_chunks then
    invalid_arg "Session.resume: ruleset differs from the ticket's";
  ticket.tk_uses <- ticket.tk_uses + 1;
  make_session config ticket.tk_keys ~rules ~chunks:ticket.tk_chunks ~encs:ticket.tk_encs
    ~label:(Printf.sprintf "#resume-%d" ticket.tk_uses)

type delivery = {
  plaintext : string;
  verdicts : Bbx_mbox.Engine.verdict list;
  record_bytes : int;
  token_bytes : int;
  token_count : int;
}

let k_ssl_opt t =
  match t.config.mode with
  | Dpienc.Probable -> Some t.keys.Handshake.k_ssl
  | Dpienc.Exact -> None

let mb_recovered_key t = Bbx_mbox.Engine.recovered_key t.engine

let mb_decrypted_stream t =
  match mb_recovered_key t with
  | None -> None
  | Some k_ssl ->
    let frames = Ssldump.decrypt_records ~k_ssl ~direction:t.dir (List.rev t.mb_records) in
    (* strip the per-record frame tag before the regexp stage *)
    Some
      (String.concat ""
         (List.map
            (fun f -> if f = "" then f else String.sub f 1 (String.length f - 1))
            frames))

let mb_keyword_hits t = Bbx_mbox.Engine.keyword_hits t.engine

let mb_verdicts t = Bbx_mbox.Engine.verdicts ?plaintext:(mb_decrypted_stream t) t.engine

(* Sender-side encryption of one payload: SSL record + encrypted tokens.
   A one-byte frame tag inside the record marks whether the payload was
   tokenized ('T') or sent as binary without tokens ('B', the paper's §3
   optimisation for images/video); the receiver validates accordingly. *)
let sender_encrypt t ~tokenized payload =
  let tag = if tokenized then "T" else "B" in
  let record = Record.seal t.writer (tag ^ payload) in
  if tokenized then begin
    let toks = tokenize t.config ~base:t.sender_stream_off payload in
    t.sender_stream_off <- t.sender_stream_off + String.length payload;
    let enc = Dpienc.sender_encrypt t.dpi_sender ?k_ssl:(k_ssl_opt t) toks in
    (record, enc)
  end
  else (record, [])

(* Receiver-side §3.4 validation: recompute the token stream from the
   decrypted plaintext and compare with what the middlebox forwarded. *)
let receiver_validate t ~tokenized plaintext forwarded =
  let expected =
    if tokenized then begin
      let toks = tokenize t.config ~base:t.receiver_stream_off plaintext in
      t.receiver_stream_off <- t.receiver_stream_off + String.length plaintext;
      Dpienc.sender_encrypt t.dpi_mirror ?k_ssl:(k_ssl_opt t) toks
    end
    else []
  in
  let same =
    List.length expected = List.length forwarded
    && List.for_all2
      (fun (a : Dpienc.enc_token) (b : Dpienc.enc_token) ->
         a.Dpienc.cipher = b.Dpienc.cipher
         && a.Dpienc.offset = b.Dpienc.offset
         && a.Dpienc.embed = b.Dpienc.embed)
      expected forwarded
  in
  if not same then
    raise (Evasion_detected "token stream does not match the decrypted payload")

let maybe_reset t payload_len =
  t.bytes_since_reset <- t.bytes_since_reset + payload_len;
  if t.config.reset_period > 0 && t.bytes_since_reset >= t.config.reset_period then begin
    t.bytes_since_reset <- 0;
    let new_salt0 = Dpienc.sender_reset t.dpi_sender in
    (* announced to MB and mirrored by the receiver *)
    Bbx_mbox.Engine.reset t.engine ~salt0:new_salt0;
    let mirror_salt0 = Dpienc.sender_reset t.dpi_mirror in
    assert (mirror_salt0 = new_salt0)
  end

let blocked t = t.is_blocked

let deliver t ~record ~tokens =
  if t.is_blocked then raise Connection_blocked;
  (* middlebox: inspect tokens, record the SSL stream, forward both *)
  Bbx_mbox.Engine.process t.engine tokens;
  t.mb_records <- record :: t.mb_records;
  (* receiver *)
  let framed = Record.open_ t.reader record in
  if String.length framed = 0 then raise (Evasion_detected "empty frame");
  let tokenized =
    match framed.[0] with
    | 'T' -> true
    | 'B' -> false
    | _ -> raise (Evasion_detected "bad frame tag")
  in
  let plaintext = String.sub framed 1 (String.length framed - 1) in
  receiver_validate t ~tokenized plaintext tokens;
  if not tokenized && tokens <> [] then
    raise (Evasion_detected "tokens attached to a binary frame");
  let all = Bbx_mbox.Engine.verdicts ?plaintext:(mb_decrypted_stream t) t.engine in
  (* report each rule once, on the send that first triggered it *)
  let fresh =
    List.filter (fun v -> not (List.mem v.Bbx_mbox.Engine.rule_idx t.reported)) all
  in
  t.reported <- List.map (fun v -> v.Bbx_mbox.Engine.rule_idx) fresh @ t.reported;
  if List.exists
      (fun v -> v.Bbx_mbox.Engine.rule.Bbx_rules.Rule.action = Bbx_rules.Rule.Drop)
      all
  then t.is_blocked <- true;
  maybe_reset t (String.length plaintext);
  { plaintext;
    verdicts = fresh;
    record_bytes = String.length record;
    token_bytes = String.length (Dpienc.encode_tokens tokens);
    token_count = List.length tokens }

(* Rule update on a live connection (§2.3: RG ships new signatures to its
   middlebox customers): only the chunks not already prepared pay the
   obfuscated-rule-encryption cost. *)
let add_rules t rules =
  let known = Hashtbl.create (Array.length t.chunks_cache) in
  Array.iter (fun c -> Hashtbl.replace known c ()) t.chunks_cache;
  let fresh_chunks =
    Array.of_list
      (List.filter
         (fun c -> not (Hashtbl.mem known c))
         (Array.to_list (Bbx_mbox.Engine.distinct_chunks rules)))
  in
  let fresh_encs, stats =
    match t.config.rule_prep with
    | Direct ->
      let key = Dpienc.key_of_secret t.keys.Handshake.k in
      (Array.map (Dpienc.token_enc key) fresh_chunks, None)
    | Garbled ->
      (* preparation runs for the fresh chunks only, on a fresh garbling
         generation (circuits are never reused across inputs) *)
      t.rule_generation <- t.rule_generation + 1;
      let generation = Printf.sprintf "update-%d" t.rule_generation in
      let encs, st =
        match t.rg with
        | None ->
          Ruleprep.prepare_unchecked ~generation ~k:t.keys.Handshake.k
            ~k_rand:t.keys.Handshake.k_rand ~chunks:fresh_chunks ()
        | Some kp ->
          let signatures =
            Array.map (Bbx_sig.Rsa.sign kp.Bbx_sig.Rsa.private_) fresh_chunks
          in
          Ruleprep.prepare ~generation ~k:t.keys.Handshake.k
            ~k_rand:t.keys.Handshake.k_rand ~chunks:fresh_chunks ~signatures
            ~rg_key:kp.Bbx_sig.Rsa.public ()
      in
      (encs, Some st)
  in
  let tbl = Hashtbl.create (Array.length fresh_chunks) in
  Array.iteri (fun i c -> Hashtbl.replace tbl c fresh_encs.(i)) fresh_chunks;
  let added =
    Bbx_mbox.Engine.add_rules t.engine ~rules ~enc_chunk:(fun c -> Hashtbl.find tbl c)
  in
  t.chunks_cache <- Array.append t.chunks_cache fresh_chunks;
  t.encs_cache <- Array.append t.encs_cache fresh_encs;
  (* A rule update forces a salt reset: the sender may already have
     emitted the new keywords' token values under earlier salts, and the
     middlebox has no way to know their counts.  Resetting puts every
     counter — old and new — back in lock-step. *)
  t.bytes_since_reset <- 0;
  let new_salt0 = Dpienc.sender_reset t.dpi_sender in
  Bbx_mbox.Engine.reset t.engine ~salt0:new_salt0;
  let mirror_salt0 = Dpienc.sender_reset t.dpi_mirror in
  assert (mirror_salt0 = new_salt0);
  (added, stats)

let send t payload =
  let record, tokens = sender_encrypt t ~tokenized:true payload in
  deliver t ~record ~tokens

let send_binary t payload =
  let record, tokens = sender_encrypt t ~tokenized:false payload in
  deliver t ~record ~tokens

let send_evading t payload ~drop_tokens =
  let record, tokens = sender_encrypt t ~tokenized:true payload in
  let tokens = List.filteri (fun i _ -> i >= drop_tokens) tokens in
  deliver t ~record ~tokens


(* ---------- bidirectional connections ---------- *)

module Duplex = struct
  type duplex = {
    c2s : t;  (* client -> server: requests *)
    s2c : t;  (* server -> client: responses *)
  }

  let rules_for direction rules =
    List.filter
      (fun r ->
         match Bbx_rules.Rule.flow_direction r with
         | `Any -> true
         | (`From_client | `From_server) as d -> d = direction)
      rules

  let establish ?(config = default_config) ?(seed = "blindbox-duplex") ?rg ~rules () =
    let t0 = Unix.gettimeofday () in
    let keys = run_handshake seed in
    (* one rule preparation covers the chunks of the whole ruleset; each
       direction's engine then loads only the rules that apply to it *)
    let chunks, encs, rule_prep_stats = prepare_rules config ?rg keys rules in
    let mk direction label =
      make_session ?rg config keys ~rules:(rules_for direction rules) ~chunks ~encs ~label
    in
    ( { c2s = mk `From_client "/c2s"; s2c = mk `From_server "/s2c" },
      { chunk_count = Array.length chunks;
        rule_prep_stats;
        setup_seconds = Unix.gettimeofday () -. t0 } )

  let client_send t payload =
    if t.s2c.is_blocked then raise Connection_blocked;
    send t.c2s payload

  let server_send t payload =
    if t.c2s.is_blocked then raise Connection_blocked;
    send t.s2c payload

  let blocked t = t.c2s.is_blocked || t.s2c.is_blocked
end
