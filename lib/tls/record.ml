open Bbx_crypto

exception Auth_failure

(* [bs] carries the bitsliced view of [enc_key] plus a reusable batch: CTR
   keystream blocks are independent and all records of a stream share one
   key, so sealing/opening generates keystream [Aes_bs.width] blocks per
   kernel call instead of one [Aes.encrypt] per block.  Byte-identical to
   the scalar path (differential-pinned in test_tls). *)
type t = {
  enc_key : Aes.key;
  mac_key : string;
  bs : (Aes_bs.key * Aes_bs.batch) option;
  mutable seq : int;
}

let tag_len = 32
let header_len = 12 (* u32 length + u64 sequence *)
let overhead = header_len + tag_len

let create ?(kernel = Aes_bs.Scalar) ~key ~direction () =
  let enc = Kdf.derive ~secret:key ~label:("record-enc:" ^ direction) 16 in
  let mac = Kdf.derive ~secret:key ~label:("record-mac:" ^ direction) 32 in
  let enc_key = Aes.expand_key enc in
  let bs =
    match kernel with
    | Aes_bs.Scalar -> None
    | Aes_bs.Bitsliced -> Some (Aes_bs.key_of_aes enc_key, Aes_bs.create_batch ())
  in
  { enc_key; mac_key = mac; bs; seq = 0 }

let seq t = t.seq

let set_seq t seq =
  if seq < 0 then invalid_arg "Record.set_seq: negative sequence";
  t.seq <- seq

let nonce seq = String.make 4 '\000' ^ "rec:" ^ Util.u64_be seq

let ctr t ~nonce data =
  match t.bs with
  | None -> Aes.ctr_transform t.enc_key ~nonce data
  | Some (k, b) -> Aes_bs.ctr_transform k b ~nonce data

let seal t plaintext =
  let seq = t.seq in
  t.seq <- seq + 1;
  let ct = ctr t ~nonce:(nonce seq) plaintext in
  let header = Util.u32_be (String.length ct) ^ Util.u64_be seq in
  let tag = Hmac.mac ~key:t.mac_key (header ^ ct) in
  header ^ ct ^ tag

let open_ t record =
  if String.length record < overhead then raise Auth_failure;
  let len = Util.read_u32_be record 0 in
  let seq = Util.read_u64_be record 4 in
  if String.length record <> overhead + len then raise Auth_failure;
  if seq <> t.seq then raise Auth_failure;
  let header = String.sub record 0 header_len in
  let ct = String.sub record header_len len in
  let tag = String.sub record (header_len + len) tag_len in
  if not (Hmac.verify ~key:t.mac_key ~tag (header ^ ct)) then raise Auth_failure;
  t.seq <- seq + 1;
  ctr t ~nonce:(nonce seq) ct
