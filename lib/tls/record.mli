(** The SSL record layer: AES-128-CTR with HMAC-SHA-256 in
    encrypt-then-MAC composition, with per-direction keys and sequence
    numbers (so records cannot be reordered, replayed or truncated
    silently).

    BlindBox forwards these records unmodified through the middlebox; only
    the parallel DPIEnc token stream is inspectable. *)

exception Auth_failure

type t

(** [create ?kernel ~key ~direction] builds one half-duplex session
    state.  Both ends must create matching states ("client->server" on the
    sender's writer and the receiver's reader, etc.).  [kernel] (default
    [Scalar]) picks the CTR keystream path: [Bitsliced] generates
    keystream [Bbx_crypto.Aes_bs.width] blocks per kernel call —
    byte-identical records either way, so the two ends may differ. *)
val create :
  ?kernel:Bbx_crypto.Aes_bs.kernel -> key:string -> direction:string ->
  unit -> t

(** [seal t plaintext] encrypts and authenticates the next record. *)
val seal : t -> string -> string

(** [open_ t record] verifies and decrypts the next record in order.
    Raises {!Auth_failure} on any tamper, replay or reorder. *)
val open_ : t -> string -> string

(** Bytes of framing + MAC overhead per record. *)
val overhead : int

(** The next sequence number this state will seal or accept. *)
val seq : t -> int

(** [set_seq t n] resumes a migrated half-duplex state at sequence [n]
    (snapshot/restore of record-layer continuity).  Raises
    [Invalid_argument] if [n] is negative. *)
val set_seq : t -> int -> unit
