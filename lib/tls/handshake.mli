(** The SSL-like handshake (paper §2.3).

    Sender and receiver run a Diffie-Hellman exchange (over the same group
    the base OTs use) to agree on a master secret [k0], then derive three
    independent keys:

    - [k_ssl]: the record-layer key (ordinary SSL encryption);
    - [k]: the DPIEnc key;
    - [k_rand]: the shared randomness seed, so both endpoints garble
      identical circuits during obfuscated rule encryption.

    The middlebox sees the handshake messages but, holding no endpoint
    secret, learns none of the keys. *)

type keys = {
  k_ssl : string;   (** 16 bytes *)
  k : string;       (** 16 bytes *)
  k_rand : string;  (** 32 bytes *)
}

type state

(** [initiate drbg] produces the client's key share (first flight). *)
val initiate : Bbx_crypto.Drbg.t -> state * string

(** [respond drbg ~peer_share] produces the server's key share and its
    derived keys in one step. *)
val respond : Bbx_crypto.Drbg.t -> peer_share:string -> keys * string

(** [complete state ~peer_share] derives the client's keys. *)
val complete : state -> peer_share:string -> keys

(** [derive_keys k0] — key-schedule from a raw master secret; exposed for
    tests and for resuming sessions. *)
val derive_keys : string -> keys
