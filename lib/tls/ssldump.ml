let decrypt_records ~k_ssl ~direction records =
  let reader = Record.create ~key:k_ssl ~direction () in
  List.map (Record.open_ reader) records

let decrypt_stream ~k_ssl ~direction records =
  String.concat "" (decrypt_records ~k_ssl ~direction records)
