(** The decryption element of Protocol III (paper §6): a wrapper modelled on
    the [ssldump] tool.  When probable cause yields [k_ssl], the middlebox
    hands the recorded records plus the key to this element, which decrypts
    the stream for the secondary analysis (regexp / scripting) stage. *)

(** [decrypt_stream ~k_ssl ~direction records] decrypts an ordered record
    list captured from one direction of a connection.  Raises
    {!Record.Auth_failure} if the key is wrong or the capture is
    corrupted. *)
val decrypt_stream : k_ssl:string -> direction:string -> string list -> string

(** [decrypt_records ~k_ssl ~direction records] — same, keeping record
    boundaries (BlindBox frames carry a type tag per record that the
    middlebox strips before regexp analysis). *)
val decrypt_records : k_ssl:string -> direction:string -> string list -> string list
