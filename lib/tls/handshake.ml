open Bbx_crypto
open Bbx_ot

type keys = { k_ssl : string; k : string; k_rand : string }

type state = { secret : Bbx_bignum.Nat.t }

let derive_keys k0 =
  { k_ssl = Kdf.derive ~secret:k0 ~label:"blindbox key-ssl" 16;
    k = Kdf.derive ~secret:k0 ~label:"blindbox key-dpi" 16;
    k_rand = Kdf.derive ~secret:k0 ~label:"blindbox key-rand" 32 }

let initiate drbg =
  let a = Group.random_exponent drbg in
  ({ secret = a }, Group.to_bytes (Group.exp Group.g a))

let shared_secret secret peer_share =
  if String.length peer_share <> Group.element_size then
    invalid_arg "Handshake: bad key-share length";
  let peer = Group.of_bytes peer_share in
  Sha256.digest (Group.to_bytes (Group.exp peer secret))

let respond drbg ~peer_share =
  let b = Group.random_exponent drbg in
  let share = Group.to_bytes (Group.exp Group.g b) in
  (derive_keys (shared_secret b peer_share), share)

let complete { secret } ~peer_share = derive_keys (shared_secret secret peer_share)
