open Bbx_crypto

type mime = Text | Binary

type obj = { name : string; mime : mime; body : string }

type t = { url : string; objects : obj list }

let bytes_matching p t =
  List.fold_left
    (fun acc o -> if p o.mime then acc + String.length o.body else acc)
    0 t.objects

let text_bytes t = bytes_matching (fun m -> m = Text) t
let binary_bytes t = bytes_matching (fun m -> m = Binary) t
let total_bytes t = bytes_matching (fun _ -> true) t

let text_body t =
  String.concat "" (List.filter_map (fun o -> if o.mime = Text then Some o.body else None) t.objects)

(* English-ish word pool with web-typical lengths (average ~5.5 chars). *)
let words =
  [| "the"; "news"; "today"; "report"; "analysis"; "climate"; "market";
     "update"; "with"; "from"; "about"; "world"; "science"; "research";
     "people"; "latest"; "video"; "article"; "comment"; "share"; "story";
     "editor"; "review"; "travel"; "health"; "technology"; "business";
     "during"; "after"; "between"; "million"; "government"; "president";
     "a"; "of"; "in"; "to"; "and"; "is"; "for"; "that"; "this"; "more" |]

let attrs = [| "class"; "id"; "href"; "src"; "style"; "data-id"; "rel" |]
let tags = [| "div"; "p"; "span"; "a"; "li"; "h2"; "section"; "article" |]

let pick drbg arr = arr.(Drbg.uniform drbg (Array.length arr))

let gen_sentence drbg buf =
  let n = 4 + Drbg.uniform drbg 10 in
  for i = 0 to n - 1 do
    if i > 0 then Buffer.add_char buf ' ';
    Buffer.add_string buf (pick drbg words)
  done;
  Buffer.add_string buf ". "

let gen_html drbg ~bytes =
  let buf = Buffer.create (bytes + 256) in
  Buffer.add_string buf "<!DOCTYPE html><html><head><title>";
  gen_sentence drbg buf;
  Buffer.add_string buf "</title></head><body>";
  while Buffer.length buf < bytes do
    let tag = pick drbg tags in
    Buffer.add_string buf (Printf.sprintf "<%s %s=\"%s-%d\">" tag (pick drbg attrs)
                             (pick drbg words) (Drbg.uniform drbg 1000));
    let sentences = 1 + Drbg.uniform drbg 4 in
    for _ = 1 to sentences do gen_sentence drbg buf done;
    Buffer.add_string buf (Printf.sprintf "</%s>" tag)
  done;
  Buffer.add_string buf "</body></html>";
  Buffer.contents buf

let gen_prose drbg ~bytes =
  (* book-like text: words and sentence punctuation only, so the delimiter
     density is that of prose rather than markup *)
  let buf = Buffer.create (bytes + 64) in
  while Buffer.length buf < bytes do
    gen_sentence drbg buf;
    if Drbg.uniform drbg 12 = 0 then Buffer.add_string buf "\n\n"
  done;
  Buffer.contents buf

let gen_script drbg ~bytes =
  let buf = Buffer.create (bytes + 256) in
  while Buffer.length buf < bytes do
    Buffer.add_string buf
      (Printf.sprintf "function %s%d(%s, %s) { var %s = %d; return %s.%s(%s + %d); }\n"
         (pick drbg words) (Drbg.uniform drbg 1000)
         (pick drbg words) (pick drbg words) (pick drbg words)
         (Drbg.uniform drbg 10000) (pick drbg words) (pick drbg words)
         (pick drbg words) (Drbg.uniform drbg 100))
  done;
  Buffer.contents buf

let gen_binary drbg ~bytes = Drbg.bytes drbg bytes

let generate drbg ~url ~text_bytes ~binary_bytes =
  let objects = ref [] in
  (* main document: ~60% of text; the rest split into scripts *)
  let html_bytes = text_bytes * 6 / 10 in
  if html_bytes > 0 then
    objects := { name = "index.html"; mime = Text; body = gen_html drbg ~bytes:html_bytes } :: !objects;
  let rest = text_bytes - html_bytes in
  let n_scripts = if rest > 0 then 1 + Drbg.uniform drbg 3 else 0 in
  for i = 1 to n_scripts do
    let share = rest / n_scripts in
    if share > 0 then
      objects :=
        { name = Printf.sprintf "app-%d.js" i; mime = Text; body = gen_script drbg ~bytes:share }
        :: !objects
  done;
  let n_blobs = if binary_bytes > 0 then 1 + Drbg.uniform drbg 4 else 0 in
  for i = 1 to n_blobs do
    let share = binary_bytes / n_blobs in
    if share > 0 then
      objects :=
        { name = Printf.sprintf "media-%d.bin" i; mime = Binary; body = gen_binary drbg ~bytes:share }
        :: !objects
  done;
  { url; objects = List.rev !objects }
