open Bbx_crypto

type flow = {
  id : int;
  payload : string;
  attack : Bbx_rules.Rule.t option;
}

let benign_payload drbg =
  let host = Printf.sprintf "ctf-%d.example" (Drbg.uniform drbg 50) in
  let path = Printf.sprintf "/app/%d?session=%d" (Drbg.uniform drbg 100) (Drbg.uniform drbg 100000) in
  let body = Page.gen_html drbg ~bytes:(200 + Drbg.uniform drbg 800) in
  let req =
    if Drbg.uniform drbg 3 = 0 then Http.post ~headers:[ ("Host", host) ] ~body path
    else Http.get ~headers:[ ("Host", host) ] path
  in
  Http.render_request req

let attack_payload drbg ~misaligned_fraction rule =
  let keywords = Bbx_rules.Rule.keywords rule in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "/vuln.php?probe=%d" (Drbg.uniform drbg 10000));
  List.iter
    (fun kw ->
       let misaligned =
         Drbg.uniform drbg 10_000 < int_of_float (misaligned_fraction *. 10_000.0)
       in
       if misaligned then
         (* glue the keyword inside an alphanumeric run: no delimiter
            boundary at its start or end *)
         Buffer.add_string buf (Printf.sprintf "&f=zq%szq" kw)
       else Buffer.add_string buf (Printf.sprintf "&arg=%s" kw))
    keywords;
  Http.render_request
    (Http.get ~headers:[ ("Host", "victim.example") ] (Buffer.contents buf))
  ^ Page.gen_html drbg ~bytes:(100 + Drbg.uniform drbg 400)

let generate ?(seed = "ictf") ?(misaligned_fraction = 0.04) ~rules ~n_attacks ~n_benign () =
  if rules = [] then invalid_arg "Trace.generate: no rules";
  let drbg = Drbg.create seed in
  let rules_arr = Array.of_list rules in
  let attacks =
    List.init n_attacks (fun i ->
        let rule = rules_arr.(Drbg.uniform drbg (Array.length rules_arr)) in
        { id = i; payload = attack_payload drbg ~misaligned_fraction rule; attack = Some rule })
  in
  let benign =
    List.init n_benign (fun i ->
        { id = n_attacks + i; payload = benign_payload drbg; attack = None })
  in
  (* interleave deterministically *)
  let all = attacks @ benign in
  List.sort (fun a b -> compare (Hashtbl.hash (seed, a.id)) (Hashtbl.hash (seed, b.id))) all
