(** Packets and flows: the unit the middlebox processes.

    BlindBox operates at the application layer, so a "packet" here is a
    payload slice with flow bookkeeping — enough to drive per-packet
    micro-benchmarks (Table 2 uses 1500-byte packets) and the throughput
    engine. *)

type t = {
  flow : int;
  seq : int;
  payload : string;
}

(** The paper's packet payload size. *)
val default_mtu : int

(** [packetize ~flow ?mtu stream] slices a byte stream into packets. *)
val packetize : flow:int -> ?mtu:int -> string -> t list

(** [reassemble packets] concatenates one flow's payloads in sequence
    order.  Raises [Invalid_argument] on missing sequence numbers or mixed
    flows. *)
val reassemble : t list -> string
