open Bbx_crypto

type site_profile = {
  site : string;
  text_kb : int;
  binary_kb : int;
}

(* 1/10-scale 2015 page weights: YouTube/AirBnB dominated by binary media,
   CNN/NYTimes mixed, Gutenberg pure text. *)
let named_sites =
  [ { site = "YouTube"; text_kb = 60; binary_kb = 1500 };
    { site = "AirBnB"; text_kb = 90; binary_kb = 700 };
    { site = "CNN"; text_kb = 180; binary_kb = 320 };
    { site = "NYTimes"; text_kb = 220; binary_kb = 280 };
    { site = "Gutenberg"; text_kb = 350; binary_kb = 0 };
  ]

let page_of_profile ?(seed = "blindbox-corpus") p =
  let drbg = Drbg.create (seed ^ "/" ^ p.site) in
  let url = "https://" ^ String.lowercase_ascii p.site ^ ".example/" in
  if p.binary_kb = 0 then
    (* pure-text sites are book-like prose (Gutenberg), not markup *)
    { Page.url;
      objects =
        [ { Page.name = "book.txt"; mime = Page.Text;
            body = Page.gen_prose drbg ~bytes:(p.text_kb * 1024) } ] }
  else
    Page.generate drbg ~url ~text_bytes:(p.text_kb * 1024) ~binary_bytes:(p.binary_kb * 1024)

let top50 ?(seed = "blindbox-top50") () =
  let drbg = Drbg.create seed in
  List.init 50 (fun i ->
      (* Sweep the text fraction from ~2% (video sites) to ~100% (text
         sites); total size varies 100 KB - 2 MB. *)
      let text_fraction = 0.02 +. (0.98 *. float_of_int i /. 49.0) in
      let total_kb = 100 + Drbg.uniform drbg 1900 in
      let text_kb = int_of_float (float_of_int total_kb *. text_fraction) in
      let p = { site = Printf.sprintf "site%02d" i; text_kb; binary_kb = total_kb - text_kb } in
      page_of_profile ~seed:(seed ^ string_of_int i) p)
