(** Synthetic web corpora standing in for the paper's page sets (DESIGN.md
    §2, substitution 5): the five named sites of Figs. 3-4 and an Alexa
    top-50-like mix for Figs. 5-6.

    Page sizes are scaled to 1/10 of the 2015 originals (and the link
    simulator's bandwidth scales identically), keeping every ratio intact
    while letting the benches run in seconds. *)

type site_profile = {
  site : string;
  text_kb : int;    (** text/code kilobytes (tokenized) *)
  binary_kb : int;  (** image/video kilobytes (not tokenized) *)
}

(** YouTube, AirBnB, CNN, NYTimes, Gutenberg — orderd as in Fig. 3, with
    the paper's qualitative mixes (video-heavy, mixed, text-only). *)
val named_sites : site_profile list

(** [page_of_profile ?seed profile] materialises a page. *)
val page_of_profile : ?seed:string -> site_profile -> Page.t

(** [top50 ?seed ()] generates 50 pages spanning video-heavy to text-heavy
    mixes (the Fig. 5 x-axis). *)
val top50 : ?seed:string -> unit -> Page.t list
