type link = { bandwidth_bps : float; rtt_s : float }

(* Broadband is scaled 1/10 to match Corpus page weights (preserving every
   transfer-time ratio).  The gigabit link stays at full rate: its role in
   Fig. 4 is to model the regime where the network is never the bottleneck
   and the sender's encryption CPU is, and scaling it down would
   re-introduce a network bottleneck that the paper's testbed didn't have. *)
let broadband = { bandwidth_bps = 2.0e6; rtt_s = 0.010 }
let gigabit = { bandwidth_bps = 1.0e9; rtt_s = 0.010 }

type cost_model = {
  tls_cpu_per_byte : float;
  bb_text_cpu_per_byte : float;
  token_wire_per_text_byte : float;
}

type scheme = Tls | Blindbox

let page_load link model scheme ~text_bytes ~binary_bytes =
  let text = float_of_int text_bytes and binary = float_of_int binary_bytes in
  let cpu, wire =
    match scheme with
    | Tls ->
      ((text +. binary) *. model.tls_cpu_per_byte, text +. binary)
    | Blindbox ->
      (* binary objects are not tokenized (paper §3): they cost plain TLS *)
      ( (text *. model.bb_text_cpu_per_byte) +. (binary *. model.tls_cpu_per_byte),
        text +. binary +. (text *. model.token_wire_per_text_byte) )
  in
  link.rtt_s +. Float.max cpu (wire *. 8.0 /. link.bandwidth_bps)

let page_load_page link model scheme page =
  page_load link model scheme
    ~text_bytes:(Page.text_bytes page) ~binary_bytes:(Page.binary_bytes page)
