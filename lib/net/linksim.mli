(** Link and page-load simulation for Figs. 3-4.

    A download is modelled as a pipeline: the sender's CPU produces
    encrypted bytes while the link drains them, so

    {v load_time = rtt + max(cpu_seconds, wire_bytes / bandwidth) v}

    — the 20 Mbps "typical client" link is network-bound (token overhead
    shows up as wire bytes), while at 1 Gbps the sender's encryption CPU
    becomes the bottleneck (the paper's 16x worst case, §7.2.2).

    Per-byte CPU costs are *measured* by the benches on the real
    implementation and passed in as a {!cost_model}; this module only does
    the arithmetic. *)

type link = {
  bandwidth_bps : float;
  rtt_s : float;
}

(** The paper's two testbeds, with bandwidth at the same 1/10 scale as
    {!Corpus} page weights. *)
val broadband : link  (* 20 Mbps x 10 ms, scaled *)
val gigabit : link    (* 1 Gbps x 10 ms, scaled *)

type cost_model = {
  tls_cpu_per_byte : float;
  (** seconds/byte: plain SSL record encryption *)
  bb_text_cpu_per_byte : float;
  (** seconds/byte of text: SSL + tokenize + DPIEnc *)
  token_wire_per_text_byte : float;
  (** extra wire bytes per text byte (5-byte ciphertexts x token density) *)
}

type scheme = Tls | Blindbox

(** [page_load link model scheme ~text_bytes ~binary_bytes] in seconds. *)
val page_load :
  link -> cost_model -> scheme -> text_bytes:int -> binary_bytes:int -> float

(** [page_load_page link model scheme page] — same on a {!Page.t}. *)
val page_load_page : link -> cost_model -> scheme -> Page.t -> float
