(** Minimal HTTP/1.1 message model.

    BlindBox is an HTTP-layer DPI (paper §2.3: "BlindBox only supports
    attack rules at the HTTP application layer"), so traces, examples and
    tests build real request/response payloads rather than ad-hoc strings.
    Bodies are byte strings framed by [Content-Length]. *)

type request = {
  meth : string;
  path : string;
  version : string;                   (** e.g. "HTTP/1.1" *)
  headers : (string * string) list;   (** in order; names case-preserved *)
  body : string;
}

type response = {
  status : int;
  reason : string;
  resp_version : string;
  resp_headers : (string * string) list;
  resp_body : string;
}

exception Malformed of string

(** [render_request r] serialises with CRLF line endings, adding a
    [Content-Length] header when a body is present and none was given. *)
val render_request : request -> string

val render_response : response -> string

(** [parse_request s] — inverse of {!render_request}.
    Raises {!Malformed}. *)
val parse_request : string -> request

val parse_response : string -> response

(** [header name msg_headers] — case-insensitive lookup. *)
val header : string -> (string * string) list -> string option

(** Convenience constructors. *)
val get : ?headers:(string * string) list -> string -> request
val post : ?headers:(string * string) list -> body:string -> string -> request
val ok : ?headers:(string * string) list -> string -> response
