type t = {
  flow : int;
  seq : int;
  payload : string;
}

let default_mtu = 1400

let packetize ~flow ?(mtu = default_mtu) stream =
  if mtu <= 0 then invalid_arg "Packet.packetize: mtu must be positive";
  let n = String.length stream in
  let count = (n + mtu - 1) / mtu in
  List.init (max count 0) (fun i ->
      { flow; seq = i; payload = String.sub stream (i * mtu) (min mtu (n - (i * mtu))) })

let reassemble packets =
  match packets with
  | [] -> ""
  | { flow; _ } :: _ ->
    let sorted = List.sort (fun a b -> compare a.seq b.seq) packets in
    let buf = Buffer.create 4096 in
    List.iteri
      (fun i p ->
         if p.flow <> flow then invalid_arg "Packet.reassemble: mixed flows";
         if p.seq <> i then invalid_arg "Packet.reassemble: missing sequence number";
         Buffer.add_string buf p.payload)
      sorted;
    Buffer.contents buf
