(** Web-page model and synthetic content generation.

    A page is a set of objects, each either text/code (HTML, JS, CSS, JSON —
    tokenized by BlindBox) or binary (images, video — not tokenized, per the
    paper's §3 optimisation).  The generators produce HTML/JS-shaped text
    with realistic delimiter density so tokenizer overheads are meaningful,
    and incompressible blobs for binary. *)

type mime = Text | Binary

type obj = {
  name : string;
  mime : mime;
  body : string;
}

type t = {
  url : string;
  objects : obj list;
}

val text_bytes : t -> int
val binary_bytes : t -> int
val total_bytes : t -> int

(** [text_body t] — concatenation of the text/code objects (what the sender
    tokenizes). *)
val text_body : t -> string

(** [gen_html drbg ~bytes] generates HTML-ish markup of roughly (and at
    least) [bytes] bytes. *)
val gen_html : Bbx_crypto.Drbg.t -> bytes:int -> string

(** [gen_prose drbg ~bytes] generates book-like prose (words and sentence
    punctuation only — the Gutenberg-style workload). *)
val gen_prose : Bbx_crypto.Drbg.t -> bytes:int -> string

(** [gen_script drbg ~bytes] generates JS-ish code. *)
val gen_script : Bbx_crypto.Drbg.t -> bytes:int -> string

(** [gen_binary drbg ~bytes] generates an incompressible blob. *)
val gen_binary : Bbx_crypto.Drbg.t -> bytes:int -> string

(** [generate drbg ~url ~text_bytes ~binary_bytes] builds a page with the
    requested byte mix split across several objects. *)
val generate :
  Bbx_crypto.Drbg.t -> url:string -> text_bytes:int -> binary_bytes:int -> t
