(** ICTF-like attack trace generation (DESIGN.md §2, substitution 6).

    The paper replays the ICTF 2010 capture-the-flag trace and checks which
    of Snort's detections BlindBox (with delimiter tokenization) reproduces.
    This generator plants rule keywords into HTTP-shaped payloads — most on
    delimiter boundaries, a small adversarial fraction glued inside
    alphanumeric runs where delimiter tokenization is blind — plus benign
    background flows.  Ground truth is then *measured* with the plaintext
    evaluator, never assumed. *)

type flow = {
  id : int;
  payload : string;
  attack : Bbx_rules.Rule.t option;  (** the rule whose keywords were planted *)
}

(** [generate ?seed ?misaligned_fraction ~rules ~n_attacks ~n_benign ()]:
    [misaligned_fraction] (default 0.04) of planted keywords are embedded
    mid-word. *)
val generate :
  ?seed:string ->
  ?misaligned_fraction:float ->
  rules:Bbx_rules.Rule.t list ->
  n_attacks:int ->
  n_benign:int ->
  unit ->
  flow list
