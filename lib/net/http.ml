type request = {
  meth : string;
  path : string;
  version : string;
  headers : (string * string) list;
  body : string;
}

type response = {
  status : int;
  reason : string;
  resp_version : string;
  resp_headers : (string * string) list;
  resp_body : string;
}

exception Malformed of string

let fail fmt = Printf.ksprintf (fun s -> raise (Malformed s)) fmt

let header name headers =
  let name = String.lowercase_ascii name in
  List.find_map
    (fun (k, v) -> if String.lowercase_ascii k = name then Some v else None)
    headers

let ensure_content_length headers body =
  if body = "" || header "content-length" headers <> None then headers
  else headers @ [ ("Content-Length", string_of_int (String.length body)) ]

let render_headers buf headers =
  List.iter (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%s: %s\r\n" k v)) headers;
  Buffer.add_string buf "\r\n"

let render_request r =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "%s %s %s\r\n" r.meth r.path r.version);
  render_headers buf (ensure_content_length r.headers r.body);
  Buffer.add_string buf r.body;
  Buffer.contents buf

let render_response r =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "%s %d %s\r\n" r.resp_version r.status r.reason);
  render_headers buf (ensure_content_length r.resp_headers r.resp_body);
  Buffer.add_string buf r.resp_body;
  Buffer.contents buf

(* Split head (start line + headers) from body at the CRLFCRLF mark. *)
let split_message s =
  let rec find i =
    if i + 4 > String.length s then fail "missing header terminator"
    else if String.sub s i 4 = "\r\n\r\n" then i
    else find (i + 1)
  in
  let sep = find 0 in
  let head = String.sub s 0 sep in
  let body = String.sub s (sep + 4) (String.length s - sep - 4) in
  match String.split_on_char '\n' (String.concat "" (String.split_on_char '\r' head)) with
  | [] -> fail "empty message"
  | start :: header_lines -> (start, header_lines, body)

let parse_header_line line =
  match String.index_opt line ':' with
  | None -> fail "bad header line %S" line
  | Some i ->
    ( String.trim (String.sub line 0 i),
      String.trim (String.sub line (i + 1) (String.length line - i - 1)) )

let check_length headers body =
  match header "content-length" headers with
  | None -> ()
  | Some l ->
    (match int_of_string_opt (String.trim l) with
     | Some n when n = String.length body -> ()
     | Some n -> fail "Content-Length %d but body has %d bytes" n (String.length body)
     | None -> fail "bad Content-Length %S" l)

let parse_request s =
  let start, header_lines, body = split_message s in
  let headers = List.map parse_header_line (List.filter (fun l -> l <> "") header_lines) in
  check_length headers body;
  match String.split_on_char ' ' start with
  | [ meth; path; version ] -> { meth; path; version; headers; body }
  | _ -> fail "bad request line %S" start

let parse_response s =
  let start, header_lines, body = split_message s in
  let resp_headers = List.map parse_header_line (List.filter (fun l -> l <> "") header_lines) in
  check_length resp_headers body;
  match String.split_on_char ' ' start with
  | version :: status :: rest ->
    (match int_of_string_opt status with
     | Some status ->
       { status; reason = String.concat " " rest; resp_version = version; resp_headers; resp_body = body }
     | None -> fail "bad status %S" status)
  | _ -> fail "bad status line %S" start

let get ?(headers = []) path = { meth = "GET"; path; version = "HTTP/1.1"; headers; body = "" }

let post ?(headers = []) ~body path =
  { meth = "POST"; path; version = "HTTP/1.1"; headers; body }

let ok ?(headers = []) body =
  { status = 200; reason = "OK"; resp_version = "HTTP/1.1"; resp_headers = headers; resp_body = body }
